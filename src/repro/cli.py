"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    mega-repro list
    mega-repro run table4 --scale small
    mega-repro run all --scale tiny --resume
    mega-repro simulate --graph Wen --algo sssp --workflow boe --pipeline
    mega-repro faults --scale tiny
    mega-repro serve --scale tiny --workers 4
    mega-repro serve --scale tiny --shards 4 --wal-dir /tmp/fleet
    mega-repro serve --follow /path/to/primary-wal --follower-id r2
    mega-repro serve --cluster 3 --node-id node-0 --wal-dir /tmp/wal \
        --ack-mode quorum:1
    mega-repro serve-bench --scale tiny --duration 5 --rate 50
    mega-repro serve-bench --failover-at-epoch 3
    mega-repro serve-bench --compare-shards 1,2,4 --ingest-every 0.5
    mega-repro serve-bench --shards 2 --shard-kill-at-epoch 2
    mega-repro serve-bench --cluster 3 --chaos-kill 3
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.algorithms import get_algorithm
from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.workloads import DATASETS, SCALES, load_scenario

__all__ = ["main"]


def _fail_usage(message: str) -> int:
    """One-line operator error (bad input, not a crash): exit code 2."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _resolve_algorithm(name: str):
    """``get_algorithm`` with CLI error semantics (KeyError -> exit 2)."""
    try:
        return get_algorithm(name)
    except KeyError as exc:
        raise SystemExit(_fail_usage(exc.args[0])) from exc


def _load_scenario_checked(name: str, *args, **kwargs):
    """``load_scenario`` with CLI error semantics (KeyError -> exit 2)."""
    try:
        return load_scenario(name, *args, **kwargs)
    except KeyError as exc:
        raise SystemExit(_fail_usage(exc.args[0])) from exc


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("datasets:", ", ".join(sorted(DATASETS)))
    print("scales:", ", ".join(SCALES))
    from repro.resilience import FAULT_POINTS

    print("fault points:", ", ".join(sorted(FAULT_POINTS)))
    return 0


def _emit_result(args: argparse.Namespace, name: str, result, note: str) -> None:
    if args.format == "json":
        print(result.to_json())
    elif args.format == "csv":
        print(result.to_csv(), end="")
    else:
        print(result.format_table())
        print(f"[{name} {note}]")
        print()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import default_scale
    from repro.resilience import RunCheckpoint, retry_with_backoff

    sweep = args.experiment == "all"
    names = list(ALL_EXPERIMENTS) if sweep else [args.experiment]
    keep_going = args.keep_going if args.keep_going is not None else sweep

    checkpoint = None
    if sweep or args.run_dir:
        scale = args.scale or default_scale()
        run_dir = args.run_dir or pathlib.Path(
            ".mega-repro"
        ) / "runs" / f"{args.experiment}-{scale}"
        checkpoint = RunCheckpoint(run_dir)
        checkpoint.write_manifest(
            experiment=args.experiment, scale=scale, format=args.format
        )

    statuses: dict[str, str] = {}
    failures: dict[str, BaseException] = {}
    for name in names:
        if args.resume and checkpoint is not None and checkpoint.has_result(name):
            result = checkpoint.load_result(name)
            statuses[name] = "restored"
            _emit_result(args, name, result, "restored from checkpoint")
            continue
        t0 = time.time()
        try:
            result = retry_with_backoff(
                lambda name=name: run_experiment(name, args.scale),
                retries=1,
                base_delay=0.2,
            )
        except Exception as exc:  # noqa: BLE001 - per-experiment isolation
            elapsed = time.time() - t0
            failures[name] = exc
            statuses[name] = "failed"
            print(
                f"[{name} FAILED after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            if checkpoint is not None:
                checkpoint.record_failure(name, exc, elapsed)
            if not keep_going:
                return 1
            continue
        statuses[name] = "ok"
        if checkpoint is not None:
            checkpoint.save_result(name, result)
        _emit_result(args, name, result, f"completed in {time.time() - t0:.1f}s")
    if checkpoint is not None:
        checkpoint.write_summary(statuses)
    if failures:
        print(
            f"[{len(failures)}/{len(names)} experiments failed: "
            f"{', '.join(sorted(failures))}]",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import repro.service  # noqa: F401 - registers service + WAL fault points
    from repro.resilience import FAULT_POINTS
    from repro.resilience.campaign import run_campaign

    algo = _resolve_algorithm(args.algo)
    for point in args.points or []:
        if point not in FAULT_POINTS:
            return _fail_usage(
                f"unknown fault point {point!r}; choose from "
                f"{sorted(FAULT_POINTS)}"
            )
    scenario = _load_scenario_checked(
        args.graph, args.scale, n_snapshots=args.snapshots
    )
    campaign = run_campaign(
        scenario, algo, points=args.points or None, seed=args.seed
    )
    print(campaign.format_table())
    if campaign.escaped:
        print(
            f"[{campaign.escaped} fault(s) escaped detection]", file=sys.stderr
        )
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    path = write_report(args.out, args.scale)
    print(f"wrote {path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import numpy as np

    scenario = _load_scenario_checked(
        args.graph, args.scale, n_snapshots=args.snapshots
    )
    u = scenario.unified
    spec = DATASETS[scenario.metadata["dataset"]]
    print(f"scenario {scenario.name}  (proxy of {spec.name})")
    print(
        f"  vertices {u.n_vertices}  union edges {u.n_union_edges}  "
        f"snapshots {u.n_snapshots}  source {scenario.source}"
    )
    common = int(u.common_mask.sum())
    print(
        f"  common graph: {common} edges "
        f"({common / u.n_union_edges:.1%} of the union)"
    )
    adds = [len(b) for b in u.addition_batches()]
    dels = [len(b) for b in u.deletion_batches()]
    print(
        f"  batches: adds {min(adds)}-{max(adds)} edges, "
        f"dels {min(dels)}-{max(dels)} edges per transition"
    )
    sizes = [u.snapshot_graph(k).n_edges for k in range(u.n_snapshots)]
    print(f"  snapshot sizes: {min(sizes)} .. {max(sizes)} edges")
    degrees = np.diff(u.graph.indptr)
    print(
        f"  degrees: mean {degrees.mean():.1f}, max {int(degrees.max())} "
        f"(vertex {int(np.argmax(degrees))})"
    )
    print(
        f"  accelerator capacity scale: "
        f"{scenario.metadata['capacity_scale']:.2e}"
    )
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.analysis import snapshot_churn, track_mean_value, track_reach
    from repro.core import EvolvingGraphEngine

    _resolve_algorithm(args.algo)
    scenario = _load_scenario_checked(
        args.graph, args.scale, n_snapshots=args.snapshots
    )
    engine = EvolvingGraphEngine(scenario, args.algo)
    result = engine.evaluate("boe", validate=True)
    reach = track_reach(result, engine.algorithm)
    mean = track_mean_value(result, engine.algorithm)
    churn = snapshot_churn(result)
    print(
        f"{engine.algorithm.name} on {scenario.name}: "
        f"{scenario.n_snapshots} snapshots"
    )
    print(f"  reach      {reach.sparkline()}  "
          f"({reach.values[0]:.0f} -> {reach.values[-1]:.0f} vertices)")
    print(f"  mean value {mean.sparkline()}  "
          f"({mean.values[0]:.3g} -> {mean.values[-1]:.3g})")
    print(f"  churn      {churn.sparkline()}  "
          f"(max {max(churn.values):.0f} vertices at snapshot "
          f"{churn.argmax()})")
    return 0


def _parse_names(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _service_config(args: argparse.Namespace):
    """Shared serve/serve-bench validation; bad names exit 2."""
    from repro.service import ServiceConfig

    for graph in _parse_names(args.graphs):
        if graph not in DATASETS:
            raise SystemExit(_fail_usage(
                f"unknown graph {graph!r}; choose from {sorted(DATASETS)}"
            ))
    for algo in _parse_names(args.algos):
        _resolve_algorithm(algo)
    if args.workers < 1:
        raise SystemExit(_fail_usage("--workers must be >= 1"))
    if args.max_batch < 1:
        raise SystemExit(_fail_usage("--max-batch must be >= 1"))
    inject = tuple(args.inject_fault) if args.inject_fault else ()
    if inject:
        import repro.service  # noqa: F401 - registers service fault points
        from repro.resilience import FAULT_POINTS

        for point in inject:
            if point not in FAULT_POINTS:
                raise SystemExit(_fail_usage(
                    f"unknown fault point {point!r}; choose from "
                    f"{sorted(FAULT_POINTS)}"
                ))
    if args.wal_compact_every < 0:
        raise SystemExit(_fail_usage("--wal-compact-every must be >= 0"))
    if getattr(args, "shards", 1) < 1:
        raise SystemExit(_fail_usage("--shards must be >= 1"))
    if getattr(args, "shards", 1) > 1 and args.mode != "eval":
        raise SystemExit(_fail_usage(
            "--shards > 1 requires --mode eval: the accelerator-model "
            "simulator is a whole-graph engine"
        ))
    if args.profile_rounds < 0:
        raise SystemExit(_fail_usage("--profile-rounds must be >= 0"))
    if args.kernel_backend not in ("", "auto", "numpy", "compiled",
                                   "numba", "cext"):
        raise SystemExit(_fail_usage(
            f"invalid --kernel-backend {args.kernel_backend!r}: expected "
            "auto|numpy|compiled|numba|cext"
        ))
    from repro.service import parse_ack_mode

    try:
        mode, _needed = parse_ack_mode(args.ack_mode)
    except ValueError as exc:
        raise SystemExit(_fail_usage(str(exc))) from None
    if mode == "quorum" and not (
        args.wal_dir or getattr(args, "follow", None)
    ):
        raise SystemExit(_fail_usage(
            "--ack-mode quorum:k needs replication: give the primary a "
            "--wal-dir followers can tail"
        ))
    if args.quorum_timeout <= 0:
        raise SystemExit(_fail_usage("--quorum-timeout must be > 0"))
    cluster = getattr(args, "cluster", 0)
    if cluster < 0 or cluster == 1:
        raise SystemExit(_fail_usage(
            "--cluster takes the group size (>= 2), or 0 to disable"
        ))
    if cluster and getattr(args, "shards", 1) > 1:
        raise SystemExit(_fail_usage(
            "--cluster and --shards are mutually exclusive: replication "
            "groups are per-shard (run one cluster per shard WAL)"
        ))
    if getattr(args, "heartbeat_interval", 0.5) <= 0:
        raise SystemExit(_fail_usage("--heartbeat-interval must be > 0"))
    if getattr(args, "slide_every", 0) < 0:
        raise SystemExit(_fail_usage("--slide-every must be >= 0"))
    return ServiceConfig(
        scale=args.scale,
        n_snapshots=args.snapshots,
        workers=args.workers,
        batching=args.batching,
        max_batch=args.max_batch,
        coalesce_ms=args.coalesce_ms,
        mode=args.mode,
        budget_s=args.budget_s,
        cache_size=max(1, args.cache_size),
        use_shm=args.shm,
        wal_dir=args.wal_dir,
        wal_fsync=args.wal_fsync,
        wal_compact_every=args.wal_compact_every,
        profile_rounds=args.profile_rounds,
        kernel_backend=args.kernel_backend,
        inject_fault=inject,
        ack_mode=args.ack_mode,
        quorum_timeout_s=args.quorum_timeout,
        node_id=getattr(args, "node_id", "") or "",
        cluster=cluster,
        window_slide_every=getattr(args, "slide_every", 0),
    )


def _sharded_service(config, n_shards: int):
    """Shard fleet behind one scatter-gather front end.

    ``config.wal_dir`` (if set) becomes the WAL *root*; each shard owns
    ``<root>/shard-<i>`` so recovery stays strictly per-shard.
    """
    from repro.service.sharding import ScatterGatherFrontEnd, ShardManager

    return ScatterGatherFrontEnd(ShardManager(n_shards, config))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QueryService, serve_stdio

    if args.cluster:
        from repro.service import ClusterNode, ReplicaServer

        config = _service_config(args)
        try:
            if args.follow:
                # a follower member: tail the shared directory under a
                # ticking supervisor that can elect itself
                node_id = args.node_id or args.follower_id
                replica = ReplicaServer(
                    args.follow, config, follower_id=node_id
                )
                node = ClusterNode(
                    args.follow, node_id,
                    replica=replica,
                    cluster_size=args.cluster,
                    heartbeat_interval_s=args.heartbeat_interval,
                )
            else:
                if not args.wal_dir:
                    return _fail_usage(
                        "--cluster primaries need --wal-dir: the shared "
                        "WAL directory is the replication medium"
                    )
                node_id = args.node_id or "node-0"
                node = ClusterNode(
                    args.wal_dir, node_id,
                    service=QueryService(config),
                    cluster_size=args.cluster,
                    heartbeat_interval_s=args.heartbeat_interval,
                )
        except ValueError as exc:  # bad --node-id / --follower-id
            return _fail_usage(str(exc))
        print(
            f"[cluster member {node_id!r} of {args.cluster}: "
            f"role={node.role} ack_mode={args.ack_mode} "
            f"heartbeat={args.heartbeat_interval:g}s]",
            file=sys.stderr,
        )
        # the node is the lifecycle bracket *and* the promote target
        return serve_stdio(node.service, replica=node)
    if args.shards > 1:
        if args.follow:
            return _fail_usage(
                "--shards and --follow are mutually exclusive: replication "
                "is per-shard (point a follower at one shard's WAL "
                "directory)"
            )
        frontend = _sharded_service(_service_config(args), args.shards)
        print(
            f"[serving on stdin/stdout: scale={args.scale} "
            f"snapshots={args.snapshots} shards={args.shards} "
            f"workers={args.workers}/shard "
            f"batching={'on' if args.batching else 'off'}]",
            file=sys.stderr,
        )
        return serve_stdio(frontend)
    if args.follow:
        from repro.service import ReplicaServer

        if args.wal_dir:
            return _fail_usage(
                "--follow and --wal-dir are mutually exclusive: a follower "
                "tails the primary's WAL and only owns one after promotion"
            )
        try:
            replica = ReplicaServer(
                args.follow,
                _service_config(args),
                follower_id=args.follower_id,
            )
        except ValueError as exc:  # a path-traversing --follower-id
            return _fail_usage(str(exc))
        print(
            f"[following {args.follow} as {args.follower_id!r}: serving "
            f"reads, redirecting ingest; send {{\"op\": \"promote\"}} to "
            f"fail over]",
            file=sys.stderr,
        )
        return serve_stdio(replica.service, replica=replica)
    service = QueryService(_service_config(args))
    print(
        f"[serving on stdin/stdout: scale={args.scale} "
        f"snapshots={args.snapshots} workers={args.workers} "
        f"batching={'on' if args.batching else 'off'}]",
        file=sys.stderr,
    )
    return serve_stdio(service)


def _cmd_crash_drill(args: argparse.Namespace) -> int:
    import tempfile

    from repro.service import run_crash_drill

    wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="mega-crash-drill-")
    graph = _parse_names(args.graphs)[0]
    algos = [a.lower() for a in _parse_names(args.algos)]
    report = run_crash_drill(
        wal_dir,
        crash_at_epoch=args.crash_at_epoch,
        graph=graph,
        scale=args.scale,
        n_snapshots=args.snapshots,
        workers=args.workers,
        algos=algos,
    )
    print(report.format_table())
    return 0 if report.ok else 1


def _cmd_failover_drill(args: argparse.Namespace) -> int:
    import tempfile

    from repro.service import run_failover_drill

    wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="mega-failover-drill-")
    graph = _parse_names(args.graphs)[0]
    algos = [a.lower() for a in _parse_names(args.algos)]
    report = run_failover_drill(
        wal_dir,
        failover_at_epoch=args.failover_at_epoch,
        graph=graph,
        scale=args.scale,
        n_snapshots=args.snapshots,
        workers=args.workers,
        algos=algos,
    )
    print(report.format_table())
    if not args.no_out and args.out:
        path = pathlib.Path(args.out)
        path.write_text(report.to_json() + "\n")
        print(f"[wrote {path}]")
    return 0 if report.ok else 1


def _cmd_shard_kill_drill(args: argparse.Namespace) -> int:
    import tempfile

    from repro.service import run_shard_kill_drill

    wal_root = args.wal_dir or tempfile.mkdtemp(prefix="mega-shard-drill-")
    graph = _parse_names(args.graphs)[0]
    algos = [a.lower() for a in _parse_names(args.algos)]
    report = run_shard_kill_drill(
        wal_root,
        n_shards=max(2, args.shards),
        crash_at_epoch=args.shard_kill_at_epoch,
        graph=graph,
        scale=args.scale,
        n_snapshots=args.snapshots,
        workers=args.workers,
        algos=algos,
    )
    print(report.format_table())
    return 0 if report.ok else 1


def _cmd_chaos_drill(args: argparse.Namespace) -> int:
    import tempfile

    from repro.service import run_chaos_kill_drill

    wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="mega-chaos-drill-")
    graph = _parse_names(args.graphs)[0]
    algos = [a.lower() for a in _parse_names(args.algos)]
    report = run_chaos_kill_drill(
        wal_dir,
        cluster=args.cluster or 3,
        kill_at_epoch=args.chaos_kill,
        graph=graph,
        scale=args.scale,
        n_snapshots=args.snapshots,
        workers=args.workers,
        algos=algos,
        load_duration_s=args.duration if args.duration > 0 else 15.0,
    )
    print(report.format_table())
    if not args.no_out and args.out:
        path = pathlib.Path(args.out)
        path.write_text(report.to_json() + "\n")
        print(f"[wrote {path}]")
    return 0 if report.ok else 1


def _parse_shard_counts(raw: str) -> list[int]:
    counts = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            n = int(part)
        except ValueError:
            raise SystemExit(_fail_usage(
                f"--compare-shards takes comma-separated integers; "
                f"got {part!r}"
            )) from None
        if n < 1:
            raise SystemExit(_fail_usage("--compare-shards counts must "
                                         "be >= 1"))
        counts.append(n)
    if not counts:
        raise SystemExit(_fail_usage("--compare-shards needs at least one "
                                     "shard count"))
    return counts


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.service import LoadSpec, QueryService, run_load

    config = _service_config(args)
    if args.crash_at_epoch < 0:
        raise SystemExit(_fail_usage("--crash-at-epoch must be >= 0"))
    if args.failover_at_epoch < 0:
        raise SystemExit(_fail_usage("--failover-at-epoch must be >= 0"))
    if args.shard_kill_at_epoch < 0:
        raise SystemExit(_fail_usage("--shard-kill-at-epoch must be >= 0"))
    if args.chaos_kill < 0:
        raise SystemExit(_fail_usage("--chaos-kill must be >= 0"))
    drills = [
        name for name, armed in [
            ("--crash-at-epoch", args.crash_at_epoch),
            ("--failover-at-epoch", args.failover_at_epoch),
            ("--shard-kill-at-epoch", args.shard_kill_at_epoch),
            ("--chaos-kill", args.chaos_kill),
        ] if armed
    ]
    if len(drills) > 1:
        raise SystemExit(_fail_usage(
            f"{' and '.join(drills)} are separate drills; pick one"
        ))
    if args.crash_at_epoch:
        return _cmd_crash_drill(args)
    if args.failover_at_epoch:
        return _cmd_failover_drill(args)
    if args.shard_kill_at_epoch:
        return _cmd_shard_kill_drill(args)
    if args.chaos_kill:
        return _cmd_chaos_drill(args)
    write_out = not args.no_out and bool(args.out)
    if not args.out and not args.no_out:
        print(
            "[deprecated: --out '' is going away; use --no-out]",
            file=sys.stderr,
        )
    spec = LoadSpec(
        duration_s=args.duration,
        rate_qps=args.rate,
        seed=args.seed,
        graphs=tuple(_parse_names(args.graphs)),
        algos=tuple(_parse_names(args.algos)),
        n_sources=args.sources,
        zipf_s=args.zipf,
        window_fraction=args.window_fraction,
        ingest_every_s=args.ingest_every,
        ingest_edges=args.ingest_edges,
        deadline_s=args.deadline_ms / 1e3,
        max_retries=args.retries,
        trace_sample=max(0, args.trace_out),
    )
    if args.compare_shards:
        if args.compare_shm or args.with_follower:
            raise SystemExit(_fail_usage(
                "--compare-shards is its own comparison; drop "
                "--compare-shm/--with-follower"
            ))
        counts = _parse_shard_counts(args.compare_shards)
        return _serve_bench_compare_shards(args, config, spec, counts,
                                           write_out)
    if args.compare_shm or args.with_follower:
        return _serve_bench_compare(args, config, spec, write_out)
    service_ctx = (
        _sharded_service(config, args.shards) if args.shards > 1
        else QueryService(config)
    )
    with service_ctx as service:
        report = run_load(service, spec)
    print(report.format_table())
    if write_out:
        path = pathlib.Path(args.out)
        path.write_text(report.to_json() + "\n")
        print(f"[wrote {path}]")
    if report.degraded:
        print(
            "[degraded run: dropped/errored queries or unrecovered fault]",
            file=sys.stderr,
        )
        return 1
    return 0


class _RemotePrimary:
    """Redirect target for ``run_load``: ingest over a serve child's stdio."""

    def __init__(self, proc) -> None:
        self._proc = proc

    def ingest(
        self, graph: str, seed: int | None = None,
        n_add: int = 8, n_del: int = 8, **_unused,
    ) -> int:
        resp = self._proc.request(
            {"op": "ingest", "graph": graph, "seed": seed,
             "n_add": n_add, "n_del": n_del}
        )
        if not resp.get("ok"):
            raise RuntimeError(f"primary refused redirected ingest: {resp}")
        return int(resp["epoch"])


def _follower_bench_leg(config, spec):
    """Run the workload against a read replica tailing a live primary.

    The primary runs as its own ``mega-repro serve`` process on a
    throwaway WAL directory — the honest two-node topology, whose ingest
    work does not share this interpreter's lock with the follower's read
    path.  The follower tails the WAL and serves every read, while the
    load generator redirects each ``not_primary``-refused ingest to the
    primary over stdio (the redirect counter lands in the follower's
    BENCH report).
    """
    import dataclasses
    import tempfile

    from repro.service import ReplicaServer, run_load
    from repro.service.drill import _ServeProcess

    wal_root = tempfile.mkdtemp(prefix="mega-follower-bench-")
    wal_dir = str(pathlib.Path(wal_root) / "wal")
    cfg_follower = dataclasses.replace(config, wal_dir=None)
    primary = _ServeProcess([
        "--scale", config.scale,
        "--snapshots", str(config.n_snapshots),
        # the primary in this leg is an ingest-only node (every read goes
        # to the follower) — one worker is its steady-state footprint
        "--workers", "1",
        "--graphs", ",".join(spec.graphs),
        "--wal-dir", wal_dir,
    ])
    try:
        health = primary.request({"op": "health"})  # readiness barrier
        if health.get("role") != "primary":  # pragma: no cover - defensive
            raise RuntimeError(f"serve child unhealthy: {health}")
        replica = ReplicaServer(
            wal_dir, cfg_follower, follower_id="bench-follower"
        )
        replica.start()
        try:
            return run_load(
                replica.service, spec, primary=_RemotePrimary(primary)
            )
        finally:
            replica.stop()
    finally:
        primary.shutdown()


def _serve_bench_compare(args, config, spec, write_out: bool) -> int:
    """Run the identical workload in alternative topologies.

    ``--compare-shm`` runs the single-node service with and without the
    shm plane (the zero-copy speedup); ``--with-follower`` additionally
    (or on its own, against a plain single-node baseline) runs the
    workload against a WAL-tailing read replica and reports the
    follower-read throughput ratio.  The JSON report carries every run
    plus the comparison so the headline ratios are committed alongside
    the raw numbers.
    """
    import dataclasses
    import json as _json

    from repro.experiments.runner import scenario_cache
    from repro.service import QueryService, run_load

    # warm the genesis scenarios once, before any leg: the first leg must
    # not be the one paying graph generation for everybody (the legs run
    # in one process and share this cache on the coordinator side)
    for g in spec.graphs:
        scenario_cache(g, config.scale, n_snapshots=config.n_snapshots)

    reports = {}
    legs = []
    if args.compare_shm:
        legs += [("shm", True), ("no_shm", False)]
    else:
        legs += [("single", config.use_shm)]
    for label, use_shm in legs:
        cfg = dataclasses.replace(config, use_shm=use_shm)
        print(f"[compare: running single-node workload with shm "
              f"{'on' if use_shm else 'off'}]", file=sys.stderr)
        with QueryService(cfg) as service:
            reports[label] = run_load(service, spec)
        print(reports[label].format_table())
        print()
    if args.with_follower:
        print("[compare: running workload against a WAL-tailing follower]",
              file=sys.stderr)
        reports["follower"] = _follower_bench_leg(config, spec)
        print(reports["follower"].format_table())
        print()
    baseline = "shm" if args.compare_shm else "single"
    base_qps = reports[baseline].results["throughput_qps"]
    comparison = {f"throughput_qps_{baseline}": base_qps}
    lines = ["== topology comparison =="]
    if args.compare_shm:
        no_shm_qps = reports["no_shm"].results["throughput_qps"]
        speedup = base_qps / max(no_shm_qps, 1e-9)
        comparison.update(
            throughput_qps_no_shm=no_shm_qps, speedup_qps=speedup
        )
        lines += [
            f"throughput with shm    {base_qps:.1f} q/s",
            f"throughput without shm {no_shm_qps:.1f} q/s",
            f"speedup {speedup:.2f}x",
        ]
    if args.with_follower:
        follower_qps = reports["follower"].results["throughput_qps"]
        ratio = follower_qps / max(base_qps, 1e-9)
        comparison.update(
            throughput_qps_follower=follower_qps,
            follower_read_qps_ratio=ratio,
        )
        lines += [
            f"throughput via follower {follower_qps:.1f} q/s "
            f"({ratio:.2f}x of single-node reads)",
        ]
        if ratio < 0.9:
            print(
                f"[follower read throughput {ratio:.2f}x of single-node; "
                f"expected >= 0.90x]",
                file=sys.stderr,
            )
    print("\n".join(lines))
    if write_out:
        path = pathlib.Path(args.out)
        payload = {
            "bench": "service-compare-shm" if args.compare_shm
            else "service-follower",
            "schema_version": 2,
            "comparison": comparison,
        }
        for label, report in reports.items():
            payload[label] = _json.loads(report.to_json())
        path.write_text(_json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {path}]")
    if any(r.degraded for r in reports.values()):
        print(
            "[degraded run: dropped/errored queries or unrecovered fault]",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_bench_compare_shards(
    args, config, spec, counts: list[int], write_out: bool
) -> int:
    """Identical offered load at each shard count, one scaling table.

    Every leg replays the same seeded open-loop schedule (arrivals,
    sources, windows, and the writer thread's ingest cadence are all
    functions of ``--seed``), so the only variable is the shard count;
    shard count 1 runs the plain single-node service as the baseline.
    The methodology note in the JSON report records the host's CPU
    budget: shards are separate worker pools inside one host, so q/s
    scaling with shard count requires free cores — on a single-core
    host the multi-shard legs measure scatter-gather protocol overhead,
    not parallel speedup, and the honest numbers say so.
    """
    import dataclasses
    import json as _json
    import os as _os

    from repro.experiments.runner import scenario_cache
    from repro.service import QueryService, run_load
    from repro.service.loadgen import BENCH_SCHEMA_VERSION

    # warm the genesis scenarios once so the first leg is not the one
    # paying graph generation for everybody
    for g in spec.graphs:
        scenario_cache(g, config.scale, n_snapshots=config.n_snapshots)

    reports: dict[int, object] = {}
    for n in counts:
        print(f"[compare: {n} shard(s), identical offered load]",
              file=sys.stderr)
        ctx = (
            _sharded_service(dataclasses.replace(config), n) if n > 1
            else QueryService(config)
        )
        with ctx as service:
            reports[n] = run_load(service, spec)
        print(reports[n].format_table())
        print()
    base_qps = reports[counts[0]].results["throughput_qps"]
    cpus = _os.cpu_count() or 1
    lines = ["== shard scaling (identical offered load per leg) =="]
    comparison: dict[str, object] = {"baseline_shards": counts[0]}
    for n in counts:
        r = reports[n].results
        qps = r["throughput_qps"]
        ratio = qps / max(base_qps, 1e-9)
        comparison[f"throughput_qps_{n}shard"] = qps
        comparison[f"speedup_{n}shard"] = ratio
        lines.append(
            f"shards {n:<2} {qps:8.1f} q/s  {ratio:5.2f}x  "
            f"p95 {r['latency_ms']['p95']:.1f} ms"
        )
    lines.append(f"host cpus {cpus}")
    methodology = (
        f"Each leg replays the identical seeded open-loop workload "
        f"(seed {spec.seed}, {spec.rate_qps:g} q/s offered for "
        f"{spec.duration_s:g}s, writer-thread ingest every "
        f"{spec.ingest_every_s:g}s); only the shard count varies, with "
        f"1 shard serving as the plain single-node baseline. Shards are "
        f"separate OS worker pools inside one host process, so "
        f"throughput scaling with shard count requires free CPU cores. "
        f"This host exposes {cpus} CPU core(s)"
        + (
            ": with a single core the multi-shard legs time-slice one "
            "core and measure the scatter-gather protocol overhead "
            "(frontier exchange, per-shard dispatch), not parallel "
            "speedup — expect q/s at N shards to trail the 1-shard "
            "baseline here, and to scale only on multi-core hosts."
            if cpus == 1 else "."
        )
    )
    print("\n".join(lines))
    if write_out:
        path = pathlib.Path(args.out)
        payload = {
            "bench": "service-shards",
            "schema_version": BENCH_SCHEMA_VERSION,
            "comparison": comparison,
            "methodology": methodology,
            "host_cpus": cpus,
        }
        for n, report in reports.items():
            payload[f"shards_{n}"] = _json.loads(report.to_json())
        path.write_text(_json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {path}]")
    if any(r.degraded for r in reports.values()):
        print(
            "[degraded run: dropped/errored queries or unrecovered fault]",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.perf import run_kernel_bench

    if args.graph not in DATASETS:
        return _fail_usage(
            f"unknown graph {args.graph!r}; choose from {sorted(DATASETS)}"
        )
    _resolve_algorithm(args.algo)
    report = run_kernel_bench(
        graph=args.graph,
        scale=args.scale,
        n_snapshots=args.snapshots,
        algo=args.algo,
        n_sources=args.sources,
        iters=args.iters,
        seed=args.seed,
        compare_backends=args.compare_backends,
    )
    print(report.format_table())
    if not args.no_out and args.out:
        path = pathlib.Path(args.out)
        path.write_text(report.to_json() + "\n")
        print(f"[wrote {path}]")
    # CI gates on parity, never on timings (shared runners jitter)
    return 0 if report.ok else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    algo = _resolve_algorithm(args.algo)
    scenario = _load_scenario_checked(
        args.graph,
        args.scale,
        n_snapshots=args.snapshots,
        batch_pct=args.batch_pct,
    )
    js = JetStreamSimulator().run(scenario, algo, validate=args.validate)
    print(js.summary())
    if args.workflow == "jetstream":
        return 0
    mega = MegaSimulator(args.workflow, pipeline=args.pipeline).run(
        scenario, algo, validate=args.validate
    )
    print(mega.summary())
    print(f"speedup over JetStream (update phase): {mega.speedup_over(js):.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mega-repro",
        description="MEGA evolving-graph accelerator reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments, datasets, scales")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate a table/figure")
    p_run.add_argument(
        "experiment", choices=sorted(ALL_EXPERIMENTS) + ["all"]
    )
    p_run.add_argument("--scale", default=None, choices=sorted(SCALES))
    p_run.add_argument(
        "--format", default="table", choices=["table", "json", "csv"]
    )
    p_run.add_argument(
        "--keep-going",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="continue past failing experiments (default: on for 'all')",
    )
    p_run.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already completed in the run directory",
    )
    p_run.add_argument(
        "--run-dir",
        type=pathlib.Path,
        default=None,
        help="checkpoint directory (default: .mega-repro/runs/<exp>-<scale>"
        " for 'all')",
    )
    p_run.set_defaults(func=_cmd_run)

    p_faults = sub.add_parser(
        "faults", help="fault-injection campaign: inject, detect, recover"
    )
    p_faults.add_argument("--graph", default="PK")
    p_faults.add_argument("--algo", default="sssp")
    p_faults.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_faults.add_argument("--snapshots", type=int, default=6)
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument(
        "--points",
        nargs="*",
        default=None,
        metavar="POINT",
        help="fault points to arm (default: all registered points)",
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_report = sub.add_parser(
        "report", help="run every experiment into one markdown report"
    )
    p_report.add_argument("--out", default="reproduction_report.md")
    p_report.add_argument("--scale", default=None, choices=sorted(SCALES))
    p_report.set_defaults(func=_cmd_report)

    p_inspect = sub.add_parser(
        "inspect", help="describe a dataset's evolving-graph scenario"
    )
    p_inspect.add_argument("--graph", default="PK")
    p_inspect.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_inspect.add_argument("--snapshots", type=int, default=16)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_track = sub.add_parser(
        "track", help="track a query property across the window"
    )
    p_track.add_argument("--graph", default="PK")
    p_track.add_argument("--algo", default="sssp")
    p_track.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_track.add_argument("--snapshots", type=int, default=16)
    p_track.set_defaults(func=_cmd_track)

    def add_service_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", default="tiny", choices=sorted(SCALES))
        p.add_argument("--snapshots", type=int, default=8)
        p.add_argument("--workers", type=int, default=2)
        p.add_argument("--shards", type=int, default=1,
                       help="partition the evolving graph into N "
                       "vertex-owned shards, each with its own worker "
                       "pool, shm plane, and WAL directory, behind one "
                       "scatter-gather front end (1 = unsharded)")
        p.add_argument("--graphs", default="PK",
                       help="comma-separated Table 2 short names")
        p.add_argument("--algos", default="sssp",
                       help="comma-separated algorithm names")
        p.add_argument(
            "--batching",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="coalesce compatible queries into shared BOE plans",
        )
        p.add_argument("--max-batch", type=int, default=8,
                       help="max distinct sources per coalesced plan")
        p.add_argument("--coalesce-ms", type=float, default=4.0,
                       help="coalescing window in milliseconds")
        p.add_argument("--mode", default="eval", choices=["eval", "simulate"],
                       help="functional executor or accelerator model")
        p.add_argument("--budget-s", type=float, default=60.0,
                       help="per-plan wall-clock budget (watchdog)")
        p.add_argument("--cache-size", type=int, default=512,
                       help="result-cache entries (1 ~= disabled)")
        p.add_argument(
            "--shm",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="publish live scenarios into shared memory so workers "
            "attach zero-copy (--no-shm restores the replay/copy path)",
        )
        p.add_argument("--wal-dir", default=None,
                       help="write-ahead log directory: ingest becomes "
                       "durable and the service recovers from it on start")
        p.add_argument("--wal-fsync", default="always",
                       choices=["always", "batch", "never"],
                       help="fsync policy for WAL appends")
        p.add_argument("--wal-compact-every", type=int, default=0,
                       help="snapshot + truncate the WAL every N ingests "
                       "(0 = never)")
        p.add_argument(
            "--inject-fault",
            nargs="*",
            default=None,
            metavar="POINT",
            help="arm these fault points on the first executed plan "
            "(resilience drill)",
        )
        p.add_argument(
            "--profile-rounds", type=int, default=0, metavar="N",
            help="sample engine kernel timings every N rounds inside "
            "workers (0 = off); aggregates land in the bench report",
        )
        p.add_argument(
            "--kernel-backend", default="",
            metavar="TIER",
            help="kernel tier pool workers must resolve: auto (default; "
            "best available), numpy (reference), compiled (require "
            "numba or the C extension), numba, cext.  Workers report "
            "the resolved tier in health and mega_kernel_backend",
        )
        p.add_argument("--ack-mode", default="local",
                       help="ingest ack durability: 'local' (fsync here) "
                       "or 'quorum:k' (hold the ack until k followers "
                       "report the epoch durable; times out into a "
                       "degraded ack, never silent loss)")
        p.add_argument("--quorum-timeout", type=float, default=5.0,
                       metavar="S",
                       help="seconds to hold a quorum ack before "
                       "degrading it to local durability")
        p.add_argument("--cluster", type=int, default=0, metavar="N",
                       help="join an N-node self-healing replication "
                       "group on the WAL directory: heartbeats, failure "
                       "detection, automatic leader election (0 = off)")
        p.add_argument("--node-id", default=None,
                       help="this member's name in the cluster (beacons, "
                       "fence claims, replication cursor)")
        p.add_argument("--heartbeat-interval", type=float, default=0.5,
                       metavar="S",
                       help="cluster heartbeat beacon cadence in seconds")
        p.add_argument("--slide-every", type=int, default=0, metavar="N",
                       help="sliding-window serving: fold a slide "
                       "checkpoint every N ingests (WAL slide record, "
                       "compaction rewrite, eager shm republish) and "
                       "serve post-slide queries incrementally from "
                       "per-worker window servers with stable-vertex "
                       "reuse (0 = off)")

    p_serve = sub.add_parser(
        "serve", help="JSON-lines query service on stdin/stdout"
    )
    add_service_options(p_serve)
    p_serve.add_argument("--follow", default=None, metavar="WAL_DIR",
                         help="run as a read replica: tail this primary "
                         "WAL directory, serve reads, refuse ingest with "
                         "a not_primary redirect; the promote op fails "
                         "over")
    p_serve.add_argument("--follower-id", default="replica-1",
                         help="replication cursor name under "
                         "<wal_dir>/followers/ (one per replica)")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench = sub.add_parser(
        "serve-bench", help="open-loop load harness for the query service"
    )
    add_service_options(p_bench)
    p_bench.add_argument("--duration", type=float, default=5.0,
                         help="open-loop arrival window in seconds")
    p_bench.add_argument("--rate", type=float, default=50.0,
                         help="offered load in queries/second")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--sources", type=int, default=16,
                         help="size of the per-graph source pool")
    p_bench.add_argument("--zipf", type=float, default=1.3,
                         help="source-skew exponent (0 = uniform)")
    p_bench.add_argument("--window-fraction", type=float, default=0.2,
                         help="fraction of queries over a random sub-window")
    p_bench.add_argument("--ingest-every", type=float, default=0.0,
                         help="ingest a synthesized delta every N seconds")
    p_bench.add_argument("--ingest-edges", type=int, default=8,
                         help="edges added and deleted per synthesized "
                         "delta (sizes the per-epoch apply work)")
    p_bench.add_argument("--deadline-ms", type=float, default=0.0,
                         help="per-query execution deadline in milliseconds "
                         "(0 = none); expired queries are shed")
    p_bench.add_argument("--retries", type=int, default=0,
                         help="client-side retries of shed/rejected queries "
                         "(backoff + jitter, honours retry_after)")
    p_bench.add_argument("--out", default="BENCH_service.json",
                         help="write the JSON report here")
    p_bench.add_argument("--no-out", action="store_true",
                         help="skip writing the JSON report")
    p_bench.add_argument("--crash-at-epoch", type=int, default=0,
                         metavar="N",
                         help="run the kill-and-recover drill instead of the "
                         "load harness: SIGKILL a serving subprocess after "
                         "N acknowledged ingests, restart it from the WAL, "
                         "and assert zero acknowledged-delta loss plus "
                         "query parity")
    p_bench.add_argument("--failover-at-epoch", type=int, default=0,
                         metavar="N",
                         help="run the failover drill instead of the load "
                         "harness: SIGKILL the serving primary after N "
                         "acknowledged ingests, promote an in-process "
                         "follower, fence the zombie, and assert zero "
                         "acknowledged-delta loss plus query parity")
    p_bench.add_argument("--shard-kill-at-epoch", type=int, default=0,
                         metavar="N",
                         help="run the shard kill drill instead of the "
                         "load harness: SIGKILL one shard's worker "
                         "processes mid-serving (the fleet must serve "
                         "through it), then SIGKILL the whole sharded "
                         "serve child after N acknowledged ingests, "
                         "restart it on the same --wal-dir root, and "
                         "assert every shard recovers exactly the acked "
                         "epoch from its own WAL plus query parity")
    p_bench.add_argument("--chaos-kill", type=int, default=0,
                         metavar="N",
                         help="run the unattended cluster chaos drill "
                         "instead of the load harness: a --cluster-sized "
                         "replication group takes quorum-acked ingest, "
                         "the primary is SIGKILLed after N acked epochs "
                         "with no promotion driver, and the cluster must "
                         "elect a new primary by itself with zero "
                         "quorum-acked loss plus query parity")
    p_bench.add_argument("--compare-shards", default=None, metavar="N,M,...",
                         help="run the identical workload once per shard "
                         "count (e.g. 1,2,4) and report the q/s scaling "
                         "table; 1 = plain single-node baseline")
    p_bench.add_argument("--compare-shm", action="store_true",
                         help="run the identical workload twice — shm plane "
                         "on, then off — and report the q/s speedup")
    p_bench.add_argument("--with-follower", action="store_true",
                         help="also run the workload against a WAL-tailing "
                         "read replica (ingest redirects to the primary) "
                         "and report the follower-read q/s ratio")
    p_bench.add_argument("--trace-out", type=int, default=0, metavar="N",
                         help="embed up to N per-query span timelines in "
                         "the JSON report (0 = none)")
    p_bench.set_defaults(func=_cmd_serve_bench)

    p_kern = sub.add_parser(
        "bench-kernels",
        help="microbenchmark the hot kernels (gather, argbest, plans, "
        "shm attach) with built-in parity checks",
    )
    p_kern.add_argument("--graph", default="Wen")
    p_kern.add_argument("--scale", default="small", choices=sorted(SCALES))
    p_kern.add_argument("--snapshots", type=int, default=8)
    p_kern.add_argument("--algo", default="sssp")
    p_kern.add_argument("--sources", type=int, default=4,
                        help="sources in the coalesced-plan benchmark")
    p_kern.add_argument("--iters", type=int, default=20,
                        help="timed iterations per kernel")
    p_kern.add_argument("--seed", type=int, default=0)
    p_kern.add_argument("--compare-backends", action="store_true",
                        help="additionally time each backend-dispatched "
                        "kernel under numpy AND the compiled tier, with "
                        "bit-identical parity gates between the legs")
    p_kern.add_argument("--out", default="BENCH_kernels.json",
                        help="write the JSON report here")
    p_kern.add_argument("--no-out", action="store_true",
                        help="skip writing the JSON report")
    p_kern.set_defaults(func=_cmd_bench_kernels)

    p_sim = sub.add_parser("simulate", help="run one simulation")
    p_sim.add_argument("--graph", default="PK")
    p_sim.add_argument("--algo", default="sssp")
    p_sim.add_argument(
        "--workflow",
        default="boe",
        choices=["jetstream", "direct-hop", "work-sharing", "boe"],
    )
    p_sim.add_argument("--pipeline", action="store_true")
    p_sim.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    p_sim.add_argument("--snapshots", type=int, default=16)
    p_sim.add_argument("--batch-pct", type=float, default=0.01)
    p_sim.add_argument("--validate", action="store_true")
    p_sim.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:  # input-validation helpers exit with code 2
        return exc.code if isinstance(exc.code, int) else 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
