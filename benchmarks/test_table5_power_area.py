"""Table 5 bench: power and area of the MEGA components."""

from conftest import run_once

from repro.experiments import table5_power


def test_table5_power_area(benchmark, scale, record_result):
    result = run_once(benchmark, table5_power.run)
    record_result(result)
    rows = {r[0].split()[0]: r for r in result.rows}
    total = rows["Total"]
    # paper: 9532 mW, 203 mm^2
    assert abs(total[3] - 9532) / 9532 < 0.05
    assert abs(total[4] - 203) / 203 < 0.05
    # the queue memory dominates both power and area
    queue = rows["Queue"]
    assert queue[3] > 0.9 * total[3]
    assert queue[4] > 0.9 * total[4]
    # MEGA's overhead over JetStream is small (paper: +6.8% / +2%)
    assert 0 < total[5] < 12
    assert 0 < total[6] < 6
