"""Fig. 3 bench: applied-addition counts per workflow (16 snapshots)."""

from conftest import run_once

from repro.experiments import fig03_additions


def test_fig03_addition_counts(benchmark, scale, record_result):
    result = run_once(benchmark, fig03_additions.run, scale)
    record_result(result)
    for dh_ratio in result.column("dh/stream"):
        assert 6.0 <= dh_ratio <= 10.0  # paper: ~8x at 16 snapshots
    for ws_ratio in result.column("ws/stream"):
        assert 1.5 <= ws_ratio <= 3.5  # paper: ~2x
