"""Fig. 4 bench: different batches on one snapshot share almost no edges."""

import statistics

from conftest import run_once

from repro.experiments import fig04_fig05_reuse


def test_fig04_reuse_same_snapshot(benchmark, scale, record_result):
    result = run_once(benchmark, fig04_fig05_reuse.run_fig04, scale)
    record_result(result)
    fractions = result.column("reused_fraction")
    assert all(0.0 <= f <= 1.0 for f in fractions)
    # paper: below ~0.06 everywhere; allow proxy-scale noise
    assert statistics.median(fractions) < 0.1
