"""Fig. 20 bench: snapshot-count sweep — partitioning erodes BOE at 24."""

from conftest import run_once

from repro.experiments import fig20_snapshots


def test_fig20_snapshot_count(benchmark, scale, record_result):
    result = run_once(benchmark, fig20_snapshots.run, scale)
    record_result(result)
    boe = dict(zip(result.column("snapshots"), result.column("boe")))
    parts = dict(
        zip(result.column("snapshots"), result.column("boe_partitions"))
    )
    # BOE clearly ahead in the paper's sweet spot
    assert boe[16] > 1.5
    # more snapshots -> more resident versions -> more partitions
    assert parts[24] > parts[8]
    # the 24-snapshot point loses ground versus the peak (paper: "MEGA's
    # performance slows down compared to the other execution flows")
    assert boe[24] < max(boe.values())
