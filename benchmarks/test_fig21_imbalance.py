"""Fig. 21 bench: BOE tolerates batch-size imbalance (dip of ~10% max)."""

from conftest import run_once

from repro.experiments import fig21_imbalance


def test_fig21_imbalance(benchmark, scale, record_result):
    result = run_once(benchmark, fig21_imbalance.run, scale)
    record_result(result)
    rel = result.column("relative_to_balanced")
    assert rel[0] == 1.0
    # paper: speedup dips only slightly (~10%) even at 4x imbalance
    assert all(r > 0.75 for r in rel)
    speedups = result.column("speedup")
    assert all(s > 5.0 for s in speedups)  # still far ahead of RisGraph WS
