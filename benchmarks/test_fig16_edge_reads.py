"""Fig. 16 bench: normalized edge reads — BOE < Work-Sharing < Direct-Hop."""

from conftest import run_once

from repro.experiments import fig16_17_18_reads


def test_fig16_edge_reads(benchmark, scale, record_result):
    result = run_once(
        benchmark, fig16_17_18_reads.run_metric, "Fig. 16", scale
    )
    record_result(result)
    for algo, dh, ws, boe in result.rows:
        assert dh == 1.0, algo  # normalization anchor
        assert boe < ws < dh, algo
        assert boe < 0.7, algo  # paper: BOE reads well under half of DH
