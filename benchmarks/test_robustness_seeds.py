"""Seed robustness: the headline conclusions are not RNG artifacts.

Re-synthesizes the PK workload with three different seeds and checks the
Table 4 ordering and the BOE speedup band hold on every one.
"""

from conftest import run_once

from repro.accel import JetStreamSimulator, MegaSimulator
from repro.algorithms import get_algorithm
from repro.workloads import load_scenario


def test_conclusions_hold_across_seeds(benchmark, scale):
    def run():
        out = []
        algo = get_algorithm("sssp")
        for seed in (7, 101, 9001):
            scenario = load_scenario("PK", scale, seed=seed)
            js = JetStreamSimulator().run(scenario, algo)
            speeds = {}
            for wf, bp in [
                ("direct-hop", False),
                ("work-sharing", False),
                ("boe", False),
                ("boe", True),
            ]:
                r = MegaSimulator(wf, pipeline=bp).run(scenario, algo)
                speeds[wf + ("+bp" if bp else "")] = r.speedup_over(js)
            out.append((seed, speeds))
        return out

    results = run_once(benchmark, run)
    for seed, s in results:
        assert s["boe+bp"] >= s["boe"] * 0.999, seed
        assert s["boe"] > s["work-sharing"] > s["direct-hop"], seed
        assert s["boe"] > 1.8, seed  # a solid multiple on every seed
