"""Fig. 5 bench: the same batch across snapshots shares ~98% of edges."""

import statistics

from conftest import run_once

from repro.experiments import fig04_fig05_reuse


def test_fig05_reuse_across_snapshots(benchmark, scale, record_result):
    result = run_once(benchmark, fig04_fig05_reuse.run_fig05, scale)
    record_result(result)
    fractions = result.column("reused_fraction")
    assert statistics.mean(fractions) > 0.9  # paper: ~0.98
    assert min(fractions) > 0.5
