"""The one-shot reproduction summary: every headline metric in band.

This is the repository's acceptance test — the EXPERIMENTS.md summary
table regenerated and checked row by row at the calibrated scale.
"""

from conftest import run_once

from repro.experiments import summary


def test_summary_all_bands(benchmark, scale, record_result):
    result = run_once(benchmark, summary.run, scale)
    record_result(result)
    verdicts = dict(zip(result.column("metric"), result.column("in_band")))
    if scale == "small":
        failing = [m for m, v in verdicts.items() if v == "NO"]
        assert not failing, failing
    else:
        # away from the calibrated scale only the scale-free structural
        # metrics must hold
        for metric in (
            "DH / streaming ops",
            "WS / streaming ops",
            "same-snapshot reuse",
            "cross-snapshot reuse",
            "total power (mW)",
            "total area (mm^2)",
        ):
            assert verdicts[metric] == "yes", metric
