"""Fig. 15 bench: larger on-chip memory raises BOE's speedup."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import fig15_memory_sweep


def test_fig15_memory_sweep(benchmark, scale, record_result):
    result = run_once(benchmark, fig15_memory_sweep.run, scale)
    record_result(result)
    by_algo = defaultdict(list)
    parts_by_algo = defaultdict(list)
    for algo, mb, speedup, parts in result.rows:
        by_algo[algo].append((mb, speedup))
        parts_by_algo[algo].append((mb, parts))
    for algo, points in by_algo.items():
        points.sort()
        speeds = [s for __, s in points]
        # monotone non-decreasing with memory (tiny numeric slack)
        for a, b in zip(speeds, speeds[1:]):
            assert b >= a * 0.999, algo
        # and the sweep spans a real difference end to end
        assert speeds[-1] > speeds[0], algo
    for algo, points in parts_by_algo.items():
        points.sort()
        parts = [p for __, p in points]
        assert parts[0] >= parts[-1], algo  # partitions shrink with memory
