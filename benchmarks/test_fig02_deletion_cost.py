"""Fig. 2 bench: deletions cost several times additions on JetStream."""

import statistics

from conftest import run_once

from repro.experiments import fig02_deletion_cost


def test_fig02_deletion_cost(benchmark, scale, record_result):
    result = run_once(benchmark, fig02_deletion_cost.run, scale)
    record_result(result)
    ratios = result.column("del/add")
    # deletions are more expensive for virtually every pair (at proxy
    # scale an occasional deletion batch misses the dependence tree)
    worse = sum(1 for r in ratios if r > 1.0)
    assert worse >= 0.9 * len(ratios)
    # and substantially so in aggregate (paper: multiples, not percents)
    assert statistics.median(ratios) > 2.0
