"""Table 4 bench: the headline accelerator comparison.

JetStream time plus Direct-Hop / Work-Sharing / BOE / BOE+BP speedups for
all six graphs and five algorithms.  The assertions encode the paper's
shape: BOE+BP >= BOE > WS > DH ~ 1x, with BOE+BP several times JetStream.
"""

import statistics

from conftest import run_once

from repro.experiments import table4_speedups


def test_table4_speedups(benchmark, scale, record_result):
    result = run_once(benchmark, table4_speedups.run, scale)
    record_result(result)
    assert len(result.rows) == 30  # 6 graphs x 5 algorithms

    dh = result.column("direct-hop_speedup")
    ws = result.column("work-sharing_speedup")
    boe = result.column("boe_speedup")
    bp = result.column("boe+bp_speedup")

    # per-row ordering: pipelining never hurts, BOE beats WS beats DH
    for row in range(len(dh)):
        assert bp[row] >= boe[row] * 0.999
        assert boe[row] > ws[row]
        assert ws[row] > dh[row]

    # aggregate magnitudes (paper: BOE 3.74-4.95x, BOE+BP 4.08-5.98x)
    assert 3.0 <= statistics.median(boe) <= 7.0
    assert 3.5 <= statistics.median(bp) <= 8.0
    # Direct-Hop hovers near JetStream (paper: 1.04-2.26x)
    assert 0.7 <= statistics.median(dh) <= 2.5
    # every JetStream run took nonzero time
    assert all(t > 0 for t in result.column("jetstream_ms"))
