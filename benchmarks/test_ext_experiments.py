"""Extension experiments: PE-scaling claim (§5.2) and per-update latency."""

from conftest import run_once

from repro.experiments import ext_latency, ext_sensitivity


def test_ext_pe_sweep(benchmark, scale, record_result):
    """§5.2: 'adding additional PEs did not improve performance without
    increasing the memory bandwidth as well as internal bandwidth'."""
    result = run_once(benchmark, ext_sensitivity.run, scale)
    record_result(result)
    pes_only = dict(
        zip(result.column("n_pes"), result.column("pes_only_cycles"))
    )
    balanced = dict(
        zip(result.column("n_pes"), result.column("balanced_cycles"))
    )
    assert abs(pes_only[32] - pes_only[8]) / pes_only[8] < 0.10
    assert balanced[32] < 0.9 * balanced[8]


def test_ext_latency(benchmark, scale, record_result):
    """BOE's per-stage latency rivals one streaming update while serving
    every target snapshot at once."""
    result = run_once(benchmark, ext_latency.run, scale)
    record_result(result)
    js_row, stage_row, amortized_row = result.rows
    js_median, stage_median = js_row[2], stage_row[2]
    amortized_mean = amortized_row[4]
    assert stage_median < js_median
    assert amortized_mean < stage_median
    assert amortized_mean < js_median / 10

def test_ext_multiquery(benchmark, scale, record_result):
    """Per-query cost falls with query count (shared fetches win over the
    added partition pressure)."""
    from repro.experiments import ext_multiquery

    result = run_once(benchmark, ext_multiquery.run, scale)
    record_result(result)
    per_query = dict(
        zip(result.column("n_queries"), result.column("cycles_per_query"))
    )
    assert per_query[8] < per_query[1]
    parts = dict(
        zip(result.column("n_queries"), result.column("n_partitions"))
    )
    assert parts[8] >= parts[1]


def test_ext_energy(benchmark, scale, record_result):
    """§5.3: ~10 W MEGA is substantially more power-efficient than the
    CPU and GPU baselines."""
    from repro.experiments import ext_energy

    result = run_once(benchmark, ext_energy.run, scale)
    record_result(result)
    rows = {r[0]: r for r in result.rows}
    mega = rows["mega (boe+bp)"]
    assert 8.0 < mega[2] < 11.0  # "consuming only 10 Watts"
    for name, row in rows.items():
        if name == "mega (boe+bp)":
            continue
        assert row[4] > 50.0, name  # orders of magnitude less energy
