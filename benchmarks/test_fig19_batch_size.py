"""Fig. 19 bench: MEGA wins across the batch-size sweep (Wen/SSWP)."""

from conftest import run_once

from repro.experiments import fig19_batch_size


def test_fig19_batch_size(benchmark, scale, record_result):
    result = run_once(benchmark, fig19_batch_size.run, scale)
    record_result(result)
    boe = result.column("boe")
    # BOE beats the other CommonGraph flows at every batch size, and
    # MEGA "consistently outperforms across the range of batch size"
    for row in result.rows:
        __, dh_s, ws_s, boe_s = row
        assert boe_s > ws_s > dh_s
        assert boe_s > 1.0
    # the win stays a solid multiple everywhere (the paper additionally
    # reports the margin growing with batch size; at proxy scale deletion
    # cascades saturate early, flattening that trend — see EXPERIMENTS.md)
    assert min(boe) > 2.0
