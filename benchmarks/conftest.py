"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper via
``benchmark.pedantic(..., rounds=1)`` — the experiments are full simulation
sweeps, so one round is the meaningful unit — then asserts the paper's
qualitative shape on the result.  ``REPRO_SCALE`` (tiny/small/medium)
selects the proxy-graph scale; the default is ``small``.

Rendered tables are written to ``benchmarks/results/<name>.txt`` so the
numbers behind EXPERIMENTS.md are regenerable artifacts.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture()
def record_result():
    """Write an ExperimentResult's table to benchmarks/results/."""

    def _write(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = result.name.lower().replace(" ", "").replace(".", "")
        (RESULTS_DIR / f"{name}.txt").write_text(result.format_table() + "\n")

    return _write


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
