"""Fig. 14 bench: MEGA vs software/GPU CommonGraph implementations."""

from conftest import run_once

from repro.experiments import fig14_software


def test_fig14_software_speedup(benchmark, scale, record_result):
    result = run_once(benchmark, fig14_software.run, scale)
    record_result(result)
    gmean_row = result.rows[-1]
    assert gmean_row[0] == "GMean"
    gmeans = dict(zip(result.headers[2:], gmean_row[2:]))

    # paper geomeans: 51.2x / 29.1x / 15.9x / 12.3x — allow a wide band,
    # the ordering is the load-bearing claim
    assert 25 <= gmeans["kickstarter-ws"] <= 90
    assert 15 <= gmeans["risgraph-ws"] <= 55
    assert 8 <= gmeans["risgraph-boe"] <= 30
    assert 6 <= gmeans["subway-ws"] <= 25
    assert (
        gmeans["kickstarter-ws"]
        > gmeans["risgraph-ws"]
        > gmeans["risgraph-boe"]
        > gmeans["subway-ws"]
    )
    # MEGA wins against every baseline on every configuration
    for row in result.rows[:-1]:
        assert all(s > 1.0 for s in row[2:])
