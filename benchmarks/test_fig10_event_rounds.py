"""Fig. 10 bench: events per round ramp to an early peak then decay."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import fig10_event_rounds


def test_fig10_event_rounds(benchmark, scale, record_result):
    result = run_once(benchmark, fig10_event_rounds.run, scale)
    record_result(result)
    series = defaultdict(list)
    for algo, __, events in result.rows:
        series[algo].append(events)
    assert set(series) == set(fig10_event_rounds.FIG10_ALGOS)
    for algo, events in series.items():
        assert len(events) >= 3, algo
        peak_at = events.index(max(events))
        # the peak arrives in the first two thirds of the run...
        assert peak_at <= 2 * len(events) // 3, algo
        # ...and the tail has decayed well below it
        assert events[-1] <= max(events) / 2, algo
