"""Fig. 17 bench: normalized vertex reads — BOE < Work-Sharing < Direct-Hop."""

from conftest import run_once

from repro.experiments import fig16_17_18_reads


def test_fig17_vertex_reads(benchmark, scale, record_result):
    result = run_once(
        benchmark, fig16_17_18_reads.run_metric, "Fig. 17", scale
    )
    record_result(result)
    for algo, dh, ws, boe in result.rows:
        assert dh == 1.0, algo
        assert boe < ws < dh, algo
