"""Ablations of MEGA's design choices (beyond the paper's figures).

DESIGN.md calls out the load-bearing mechanisms; each ablation disables or
sweeps one and shows it matters:

* the unified multi-snapshot value array (row-wide version processing,
  §3.2) — without it BOE degenerates toward per-version scalar work;
* batch pipelining's injection threshold (§3.2, Fig. 11);
* the edge cache capacity;
* JetStream's deletion-logic cost factor (sensitivity of the baseline).
"""

from dataclasses import replace

from conftest import run_once

from repro.accel import JetStreamSimulator, MegaSimulator, mega_config, jetstream_config
from repro.algorithms import get_algorithm
from repro.workloads import load_scenario


def _scenario(scale):
    return load_scenario("Wen", scale)


def test_ablation_row_wide_versions(benchmark, scale):
    """Disabling the unified value array costs BOE most of its edge."""
    scenario = _scenario(scale)
    algo = get_algorithm("sssp")

    def run():
        with_rows = MegaSimulator("boe", config=mega_config()).run(
            scenario, algo
        )
        scalar_cfg = replace(mega_config(), row_wide_versions=False)
        without = MegaSimulator("boe", config=scalar_cfg).run(scenario, algo)
        return with_rows, without

    with_rows, without = run_once(benchmark, run)
    assert without.update_cycles > 1.2 * with_rows.update_cycles
    assert without.counters.dram_bytes > with_rows.counters.dram_bytes


def test_ablation_pipeline_threshold(benchmark, scale):
    """BP saves cycles for any sane threshold; savings saturate."""
    scenario = _scenario(scale)
    algo = get_algorithm("sssp")

    def run():
        out = {}
        base = MegaSimulator("boe").run(scenario, algo)
        out[0] = base.update_cycles
        for threshold in (16, 64, 256):
            cfg = replace(mega_config(), pipeline_threshold_events=threshold)
            r = MegaSimulator("boe", pipeline=True, config=cfg).run(
                scenario, algo
            )
            out[threshold] = r.update_cycles
        return out

    cycles = run_once(benchmark, run)
    # pipelining never hurts at any threshold (it can only merge rounds)
    for threshold in (16, 64, 256):
        assert cycles[threshold] <= cycles[0] * 1.001, threshold
    # and at least one setting yields a real saving
    assert min(cycles[t] for t in (16, 64, 256)) < cycles[0] * 0.995


def test_ablation_edge_cache(benchmark, scale):
    """A larger edge cache reduces DRAM traffic (and never hurts)."""
    scenario = _scenario(scale)
    algo = get_algorithm("sssp")

    def run():
        out = {}
        for kb in (0.25, 1.0, 64.0):
            cfg = replace(mega_config(), edge_cache_kb_per_pe=kb)
            r = MegaSimulator("boe", config=cfg).run(scenario, algo)
            out[kb] = (r.update_cycles, r.counters.edge_block_misses)
        return out

    res = run_once(benchmark, run)
    __, misses_small = res[0.25]
    __, misses_big = res[64.0]
    assert misses_big <= misses_small
    assert res[64.0][0] <= res[0.25][0] * 1.001


def test_ablation_deletion_factor(benchmark, scale):
    """The Fig. 2 gap persists even with free deletion logic: most of the
    deletion cost is the invalidation/recompute traffic, not the factor."""
    scenario = _scenario(scale)
    algo = get_algorithm("sssp")

    def run():
        out = {}
        for factor in (1.0, 6.0, 12.0):
            cfg = replace(jetstream_config(), deletion_event_factor=factor)
            r = JetStreamSimulator(config=cfg).run(scenario, algo)
            out[factor] = (r.update_cycles, dict(r.phase_cycles))
        return out

    res = run_once(benchmark, run)
    assert res[1.0][0] <= res[6.0][0] <= res[12.0][0]
    # deletions dominate additions even at factor 1 (traffic-driven)
    phases = res[1.0][1]
    assert phases["del"] > phases["add"]


def test_ablation_dram_model(benchmark, scale):
    """The row-buffer-aware DRAM model changes absolute cycles but not the
    workflow ordering — the relative conclusions are model-robust."""
    scenario = _scenario(scale)
    algo = get_algorithm("sssp")

    def run():
        out = {}
        for detailed in (False, True):
            cfg = replace(mega_config(), detailed_dram=detailed)
            js_cfg = replace(jetstream_config(), detailed_dram=detailed)
            js = JetStreamSimulator(config=js_cfg).run(scenario, algo)
            speeds = {}
            for wf in ("work-sharing", "boe"):
                r = MegaSimulator(wf, config=cfg).run(scenario, algo)
                speeds[wf] = r.speedup_over(js)
            out[detailed] = speeds
        return out

    res = run_once(benchmark, run)
    for detailed, speeds in res.items():
        assert speeds["boe"] > speeds["work-sharing"] > 1.0, detailed
