"""Serving benchmark: sliding the window beats re-evaluating it.

The WindowServer extension's value proposition, quantified: one
``advance`` (reuse N-1 snapshots, compute one incrementally) against a
full BOE re-evaluation of the new window.
"""

import time

import numpy as np

from conftest import run_once

from repro.algorithms import get_algorithm
from repro.core import WindowServer
from repro.engines import PlanExecutor
from repro.graph.edges import EdgeList, edge_keys
from repro.schedule import boe_plan
from repro.workloads import load_scenario


def _transition(server, rng, n_adds=25, n_dels=20):
    u = server.scenario.unified
    n = u.n_vertices
    taken = set(edge_keys(u.graph.src_of_edge, u.graph.dst, n).tolist())
    adds = []
    while len(adds) < n_adds:
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if s == d or s * n + d in taken:
            continue
        taken.add(s * n + d)
        adds.append((s, d, float(rng.uniform(1, 8))))
    deletable = np.flatnonzero(
        u.presence_mask(u.n_snapshots - 1) & (u.add_step < 1)
    )
    chosen = rng.choice(deletable, size=n_dels, replace=False)
    dels = [(int(u.graph.src_of_edge[e]), int(u.graph.dst[e])) for e in chosen]
    return EdgeList.from_tuples(n, adds), dels


def test_slide_beats_reevaluation(benchmark, scale):
    scenario = load_scenario("PK", scale, n_snapshots=8)
    algo = get_algorithm("sssp")

    def run():
        server = WindowServer(scenario, algo)
        rng = np.random.default_rng(3)
        slide_total = 0.0
        reeval_total = 0.0
        for __ in range(5):
            adds, dels = _transition(server, rng)
            t0 = time.perf_counter()
            server.advance(adds, dels)
            slide_total += time.perf_counter() - t0
            t0 = time.perf_counter()
            PlanExecutor(server.scenario, algo).run(
                boe_plan(server.scenario.unified)
            )
            reeval_total += time.perf_counter() - t0
        return slide_total, reeval_total, server

    slide, reeval, server = run_once(benchmark, run)
    assert server.slides == 5
    # sliding reuses N-1 snapshots: clearly cheaper than re-running BOE
    assert slide < reeval
