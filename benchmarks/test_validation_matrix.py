"""The paper's §5.1 validation, as a benchmark: every workflow on every
graph and algorithm produces ground-truth values on every snapshot.

This is the reproduction's equivalent of "We validated the final results
of MEGA executions against those of the software baselines" — run across
the full evaluation matrix at tiny proxy scale (correctness does not need
big graphs; the timing benchmarks cover those).
"""

from conftest import run_once

from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import validate_workflow
from repro.experiments.runner import ALGOS, GRAPHS
from repro.schedule import WORKFLOWS, plan_for
from repro.workloads import load_scenario


def test_validation_matrix(benchmark):
    def run():
        checked = 0
        for graph in GRAPHS:
            scenario = load_scenario(graph, "tiny", n_snapshots=8)
            for algo_name in ALGOS:
                algo = get_algorithm(algo_name)
                for workflow in sorted(WORKFLOWS):
                    result = PlanExecutor(scenario, algo).run(
                        plan_for(workflow, scenario.unified)
                    )
                    validate_workflow(scenario, algo, result)
                    checked += 1
        return checked

    checked = run_once(benchmark, run)
    assert checked == len(GRAPHS) * len(ALGOS) * len(WORKFLOWS)
