"""Microbenchmarks of the engine's hot kernels.

Unlike the table/figure benchmarks (one simulation sweep per round), these
are classic repeated-timing microbenchmarks of the primitives everything
else is built on: the CSR edge gather, the coalescing scatter-reduce, a
full single-source evaluation, and one BOE multi-version batch step.
"""

import numpy as np
import pytest

from repro.algorithms import SSSP
from repro.engines import MultiVersionEngine
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph, gather_out_edges
from repro.graph.generators import rmat_edges


@pytest.fixture(scope="module")
def graph():
    return CSRGraph.from_edges(rmat_edges(4_000, 64_000, seed=11))


@pytest.fixture(scope="module")
def unified(graph):
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


def test_bench_gather_out_edges(benchmark, graph):
    rng = np.random.default_rng(0)
    frontier = np.unique(rng.integers(0, graph.n_vertices, 1_000))
    idx, src = benchmark(gather_out_edges, graph.indptr, frontier)
    assert idx.size > 0


def test_bench_scatter_reduce(benchmark, graph):
    algo = SSSP()
    rng = np.random.default_rng(1)
    n = graph.n_vertices
    index = rng.integers(0, n, 50_000)
    cand = rng.uniform(0, 100, 50_000)

    def run():
        values = np.full(n, np.inf)
        algo.scatter_reduce(values, index, cand)
        return values

    values = benchmark(run)
    assert np.isfinite(values).sum() > 0


def test_bench_full_evaluation(benchmark, unified):
    algo = SSSP()
    presence = np.ones(unified.n_union_edges, dtype=bool)

    def run():
        return MultiVersionEngine(algo, unified).evaluate_full(presence, 0)

    values = benchmark(run)
    assert np.isfinite(values).sum() > unified.n_vertices // 2


def test_bench_multi_version_batch(benchmark, unified):
    """One batch applied to 16 versions at once — BOE's inner step."""
    algo = SSSP()
    rng = np.random.default_rng(2)
    batch = rng.choice(unified.n_union_edges, size=640, replace=False)
    presence_base = np.ones(unified.n_union_edges, dtype=bool)
    presence_base[batch] = False
    engine = MultiVersionEngine(algo, unified)
    base = engine.evaluate_full(presence_base, 0)
    presence = np.tile(presence_base, (16, 1))
    presence[:, batch] = True

    def run():
        values = np.tile(base, (16, 1))
        engine.apply_additions(values, batch, presence)
        return values

    values = benchmark(run)
    assert values.shape == (16, unified.n_vertices)


def test_bench_engine_scaling(benchmark):
    """Throughput characterization: full evaluation scales near-linearly
    with edge count (vectorized kernels, no quadratic blowups)."""
    import time

    algo = SSSP()
    rates = {}

    def run():
        for n_edges in (8_000, 32_000, 128_000):
            g = CSRGraph.from_edges(
                rmat_edges(n_edges // 16, n_edges, seed=13)
            )
            none = np.full(g.n_edges, -1, dtype=np.int32)
            u = UnifiedCSR(g, none, none.copy(), 1)
            t0 = time.perf_counter()
            MultiVersionEngine(algo, u).evaluate_full(
                np.ones(g.n_edges, dtype=bool), 0
            )
            rates[n_edges] = n_edges / (time.perf_counter() - t0)
        return rates

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # edges/second at 128k edges is within ~8x of the 8k-edge rate —
    # i.e. no superlinear blowup (wide tolerance absorbs machine noise)
    assert result[128_000] > result[8_000] / 8.0
