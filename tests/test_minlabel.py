"""Tests for the MinLabel (connected components) extension algorithm."""

import numpy as np
import pytest

from repro.algorithms.extensions import MinLabel, symmetrize
from repro.engines import MultiVersionEngine, PlanExecutor
from repro.engines.validation import validate_workflow
from repro.evolving import synthesize_scenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.schedule import (
    boe_plan,
    direct_hop_plan,
    streaming_plan,
    work_sharing_plan,
)


def make_static(graph: CSRGraph) -> UnifiedCSR:
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


def reference_components(n, pairs):
    """Union-find ground truth: min vertex id per component."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return np.array([find(v) for v in range(n)], dtype=np.float64)


def test_components_on_symmetric_graph():
    from repro.graph.edges import EdgeList

    pairs = [(0, 1), (1, 2), (4, 5), (7, 7)]
    edges = symmetrize(
        EdgeList.from_tuples(8, [(a, b) for a, b in pairs if a != b])
    )
    g = CSRGraph.from_edges(edges)
    engine = MultiVersionEngine(MinLabel(), make_static(g))
    vals = engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    expected = reference_components(8, pairs)
    assert np.array_equal(vals, expected)
    assert vals[3] == 3.0  # isolated vertex keeps its own label


def test_components_random_graph():
    edges = symmetrize(rmat_edges(80, 240, seed=6))
    g = CSRGraph.from_edges(edges)
    engine = MultiVersionEngine(MinLabel(), make_static(g))
    vals = engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    pairs = list(zip(g.src_of_edge.tolist(), g.dst.tolist()))
    assert np.array_equal(vals, reference_components(80, pairs))


def test_directed_min_reaching_label():
    g = CSRGraph.from_tuples(4, [(2, 3), (0, 3)])
    engine = MultiVersionEngine(MinLabel(), make_static(g))
    vals = engine.evaluate_full(np.ones(2, dtype=bool), 0)
    assert vals.tolist() == [0.0, 1.0, 2.0, 0.0]


@pytest.mark.parametrize(
    "factory",
    [streaming_plan, direct_hop_plan, work_sharing_plan, boe_plan],
    ids=lambda f: f.__name__,
)
def test_minlabel_on_every_workflow(factory):
    """Evolving connected components: all workflows, ground truth, with
    deletions splitting components (the streaming baseline repairs them)."""
    pool = symmetrize(rmat_edges(48, 180, seed=8))
    scenario = synthesize_scenario(pool, n_snapshots=4, batch_pct=0.04, seed=3)
    algo = MinLabel()
    result = PlanExecutor(scenario, algo).run(factory(scenario.unified))
    validate_workflow(scenario, algo, result)


def test_minlabel_deletion_splits_component():
    """Deleting the only bridge splits the component; repair must find the
    new labels (including re-propagating reset vertices' own ids)."""
    # 0-1-2   bridge (1,2); symmetric edges
    g = CSRGraph.from_tuples(
        3, [(0, 1), (1, 0), (1, 2), (2, 1)]
    )
    u = make_static(g)
    engine = MultiVersionEngine(MinLabel(), u, track_parents=True)
    vals = engine.evaluate_full(
        np.ones(g.n_edges, dtype=bool), 0, parent_row=0
    )
    assert vals.tolist() == [0.0, 0.0, 0.0]

    from repro.engines import DeletionRepair

    presence_after = np.ones(g.n_edges, dtype=bool)
    # delete both directions of the bridge 1-2
    bridge = [
        i
        for i in range(g.n_edges)
        if {int(g.src_of_edge[i]), int(g.dst[i])} == {1, 2}
    ]
    presence_after[bridge] = False
    DeletionRepair(engine).apply_deletions(
        vals, np.array(bridge), presence_after, 0
    )
    assert vals.tolist() == [0.0, 0.0, 2.0]
