"""Tests for the sliding-window server."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.core.window_server import WindowServer
from repro.engines import MultiVersionEngine
from repro.engines.deletion import reconstruct_parents
from repro.engines.validation import evaluate_reference
from repro.evolving import synthesize_scenario
from repro.graph.edges import EdgeList, edge_keys
from repro.graph.generators import rmat_edges


def fresh_server(seed=3, algo="sssp", n_snapshots=5):
    pool = rmat_edges(64, 512, seed=seed)
    scenario = synthesize_scenario(
        pool, n_snapshots=n_snapshots, batch_pct=0.04, seed=seed + 1
    )
    return WindowServer(scenario, get_algorithm(algo))


def check_against_scratch(server):
    for k in range(server.n_snapshots):
        expected = evaluate_reference(
            server.scenario, server.algorithm, k
        )
        assert np.allclose(server.values(k), expected, equal_nan=True), k


def pick_new_edges(server, rng, count):
    u = server.scenario.unified
    n = u.n_vertices
    taken = set(
        edge_keys(u.graph.src_of_edge, u.graph.dst, n).tolist()
    )
    out = []
    while len(out) < count:
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if s == d or s * n + d in taken:
            continue
        taken.add(s * n + d)
        out.append((s, d, float(rng.uniform(1, 8))))
    return EdgeList.from_tuples(n, out)


def pick_deletable(server, rng, count):
    u = server.scenario.unified
    last = u.presence_mask(u.n_snapshots - 1)
    ok = last & (u.add_step < 1)
    slots = rng.choice(np.flatnonzero(ok), size=count, replace=False)
    return [
        (int(u.graph.src_of_edge[s]), int(u.graph.dst[s])) for s in slots
    ]


def test_initial_window_matches_scratch():
    server = fresh_server()
    check_against_scratch(server)


@pytest.mark.parametrize(
    "algo", ["sssp", "sswp", "bfs", "ssnp", "viterbi"]
)
def test_slides_stay_correct(algo):
    server = fresh_server(algo=algo)
    rng = np.random.default_rng(11)
    for step in range(4):
        adds = pick_new_edges(server, rng, 6)
        dels = pick_deletable(server, rng, 5)
        server.advance(adds, dels)
        check_against_scratch(server)
    assert server.slides == 4


@pytest.mark.parametrize(
    "algo", ["sssp", "sswp", "bfs", "ssnp", "viterbi"]
)
def test_slid_window_is_bit_identical_to_fresh_build(algo):
    """Differential parity: after >= 3 slides with additions *and*
    deletions, every snapshot the advanced server holds must equal —
    bit for bit — a WindowServer freshly built over the slid scenario
    (the unique-fixpoint argument sliding-window serving relies on)."""
    server = fresh_server(algo=algo)
    rng = np.random.default_rng(23)
    for _ in range(3):
        adds = pick_new_edges(server, rng, 5)
        dels = pick_deletable(server, rng, 4)
        server.advance(adds, dels)
    rebuilt = WindowServer(server.scenario, server.algorithm)
    for k in range(server.n_snapshots):
        assert np.array_equal(
            server.values(k), rebuilt.values(k), equal_nan=True
        ), (algo, k)


def test_stable_vertex_tracking():
    """advance() reports a provably-stable vertex set: every vertex it
    marks stable kept its latest value bit-for-bit across the slide."""
    server = fresh_server(algo="sssp")
    assert server.last_stable is None and server.stable_rate == 0.0
    rng = np.random.default_rng(31)
    for _ in range(3):
        before = server.latest().copy()
        adds = pick_new_edges(server, rng, 5)
        dels = pick_deletable(server, rng, 4)
        server.advance(adds, dels)
        stable = server.last_stable
        assert stable is not None and stable.dtype == bool
        after = server.latest()
        same = (before == after) | (
            np.isnan(before) & np.isnan(after)
        )
        assert bool(same[stable].all()), "a 'stable' vertex changed"
    assert server.slide_vertices == 3 * server.scenario.n_vertices
    assert 0.0 < server.stable_rate <= 1.0
    assert server.stable_vertices == round(
        server.stable_rate * server.slide_vertices
    )


def test_slide_preserves_surviving_results():
    server = fresh_server()
    before = [server.values(k).copy() for k in range(server.n_snapshots)]
    rng = np.random.default_rng(5)
    server.advance(pick_new_edges(server, rng, 3), pick_deletable(server, rng, 3))
    for k in range(server.n_snapshots - 1):
        assert np.array_equal(server.values(k), before[k + 1])


def test_additions_only_slide():
    server = fresh_server(algo="sswp")
    rng = np.random.default_rng(9)
    server.advance(additions=pick_new_edges(server, rng, 8))
    check_against_scratch(server)


def test_deletions_only_slide():
    server = fresh_server(algo="bfs")
    rng = np.random.default_rng(13)
    server.advance(deletions=pick_deletable(server, rng, 6))
    check_against_scratch(server)


def test_rejects_window_internal_deletion():
    server = fresh_server()
    u = server.scenario.unified
    inside = np.flatnonzero(u.add_step >= 1)
    if inside.size == 0:
        pytest.skip("no window-internal additions for this seed")
    s = int(u.graph.src_of_edge[inside[0]])
    d = int(u.graph.dst[inside[0]])
    with pytest.raises(ValueError, match="split the window"):
        server.advance(deletions=[(s, d)])


def test_rejects_absent_deletion_and_duplicate_addition():
    server = fresh_server()
    u = server.scenario.unified
    with pytest.raises(ValueError, match="not present"):
        server.advance(deletions=[(0, 0)])
    live = np.flatnonzero(u.presence_mask(u.n_snapshots - 1))[0]
    dup = EdgeList.from_tuples(
        u.n_vertices,
        [(int(u.graph.src_of_edge[live]), int(u.graph.dst[live]), 2.0)],
    )
    with pytest.raises(ValueError, match="duplicate a live edge"):
        server.advance(additions=dup)


# -- parent reconstruction ------------------------------------------------------


@pytest.mark.parametrize("algo_name", ["sssp", "sswp", "ssnp", "viterbi", "bfs"])
def test_reconstructed_parents_enable_repair(algo_name):
    """Deletion repair on reconstructed parents equals from-scratch."""
    algo = get_algorithm(algo_name)
    pool = rmat_edges(72, 560, seed=21)
    scenario = synthesize_scenario(pool, n_snapshots=2, batch_pct=0.03, seed=4)
    u = scenario.unified
    presence = u.presence_mask(1)
    engine = MultiVersionEngine(algo, u, track_parents=True)
    values = engine.evaluate_full(presence, scenario.source)  # NO parents
    reconstruct_parents(engine, values, presence, scenario.source)

    rng = np.random.default_rng(6)
    doomed = rng.choice(np.flatnonzero(presence), size=40, replace=False)
    presence_after = presence.copy()
    presence_after[doomed] = False
    from repro.engines import DeletionRepair

    DeletionRepair(engine).apply_deletions(
        values, doomed, presence_after, scenario.source
    )
    expected = MultiVersionEngine(algo, u).evaluate_full(
        presence_after, scenario.source
    )
    assert np.allclose(values, expected, equal_nan=True)


def test_reconstructed_forest_is_acyclic():
    algo = get_algorithm("sswp")  # plateau-prone: the cycle hazard case
    pool = rmat_edges(64, 700, seed=2)
    scenario = synthesize_scenario(pool, n_snapshots=2, batch_pct=0.03, seed=8)
    u = scenario.unified
    presence = u.presence_mask(0)
    engine = MultiVersionEngine(algo, u, track_parents=True)
    values = engine.evaluate_full(presence, scenario.source)
    reconstruct_parents(engine, values, presence, scenario.source)
    parent = engine.parent_edge[0]
    for v in range(u.n_vertices):
        seen = set()
        cur = v
        while parent[cur] >= 0:
            assert cur not in seen, "cycle!"
            seen.add(cur)
            cur = int(u.graph.src_of_edge[parent[cur]])

def test_as_result_feeds_analysis():
    from repro.analysis import track_reach

    server = fresh_server(algo="bfs")
    series = track_reach(server.as_result(), server.algorithm)
    assert len(series) == server.n_snapshots
    assert series.values[-1] > 0
