"""Tests for the multi-version DAIC propagation engine."""

import numpy as np
import pytest

from repro.algorithms import SSSP
from repro.engines import MultiVersionEngine, TraceCollector, group_argbest
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph


def make_static(graph: CSRGraph, n_snapshots: int = 1) -> UnifiedCSR:
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), n_snapshots)


@pytest.fixture
def chain_unified():
    g = CSRGraph.from_tuples(
        5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
    )
    return make_static(g)


def test_full_eval_chain(chain_unified):
    engine = MultiVersionEngine(SSSP(), chain_unified)
    vals = engine.evaluate_full(np.ones(4, dtype=bool), 0)
    assert vals.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_full_eval_respects_presence(chain_unified):
    engine = MultiVersionEngine(SSSP(), chain_unified)
    presence = np.array([True, True, False, True])  # cut edge (2,3)
    vals = engine.evaluate_full(presence, 0)
    assert vals.tolist() == [0.0, 1.0, 2.0, np.inf, np.inf]


def test_incremental_addition_matches_full(chain_unified, algorithm):
    """Adding an edge incrementally equals evaluating from scratch."""
    engine = MultiVersionEngine(algorithm, chain_unified)
    presence = np.array([True, True, False, True])
    vals = engine.evaluate_full(presence, 0)
    presence_after = np.ones(4, dtype=bool)
    engine.apply_additions(
        vals[None, :], np.array([2]), presence_after[None, :]
    )
    expected = engine.evaluate_full(presence_after, 0)
    assert np.allclose(vals, expected)


def test_multi_version_propagation_isolates_versions(chain_unified):
    """Two versions with different graphs converge to different values."""
    engine = MultiVersionEngine(SSSP(), chain_unified)
    values = engine.new_values(2, 0)
    frontier = np.zeros((2, 5), dtype=bool)
    frontier[:, 0] = True
    presence = np.ones((2, 4), dtype=bool)
    presence[1, 3] = False  # version 1 misses edge (3,4)
    engine.propagate(values, frontier, presence)
    assert values[0].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert values[1].tolist() == [0.0, 1.0, 2.0, 3.0, np.inf]


def test_multi_version_batch_apply_shared_fetch(chain_unified):
    """One batch applied to two versions produces per-version results and
    records a single shared-fetch execution."""
    collector = TraceCollector(4)
    engine = MultiVersionEngine(SSSP(), chain_unified, collector=collector)
    presence = np.tile(np.array([True, True, False, True]), (2, 1))
    values = np.stack(
        [
            engine.evaluate_full(presence[0], 0),
            engine.evaluate_full(presence[1], 0),
        ]
    )
    presence[0, 2] = True  # only version 0 receives the edge
    engine.apply_additions(
        values, np.array([2]), presence, targets=(0, 1)
    )
    assert values[0].tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert values[1].tolist() == [0.0, 1.0, 2.0, np.inf, np.inf]
    batch_exec = collector.executions[-1]
    assert batch_exec.targets == (0, 1)
    assert all(r.n_versions == 2 for r in batch_exec.rounds)


def test_trace_rounds_recorded(chain_unified):
    collector = TraceCollector(4)
    engine = MultiVersionEngine(SSSP(), chain_unified, collector=collector)
    engine.evaluate_full(np.ones(4, dtype=bool), 0)
    [execution] = collector.executions
    # chain of 5 vertices: 4 productive rounds + 1 draining round (sink)
    assert execution.n_rounds == 5
    assert execution.events_popped >= 4
    assert execution.vertex_writes == 4
    assert execution.events_per_round()[0] == 1


def test_rounds_decay_on_power_law_graph():
    """Fig. 10 shape: events per round rise then fall toward a long tail."""
    from repro.graph.generators import rmat_edges

    g = CSRGraph.from_edges(rmat_edges(512, 4096, seed=2))
    u = make_static(g)
    collector = TraceCollector(g.n_edges)
    engine = MultiVersionEngine(SSSP(), u, collector=collector)
    engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    series = collector.executions[0].events_per_round()
    assert max(series) == max(series[: len(series) // 2 + 1])  # peak early
    assert series[-1] <= max(series) // 2  # decayed tail


def test_new_values_shape(chain_unified):
    engine = MultiVersionEngine(SSSP(), chain_unified)
    vals = engine.new_values(3, 2)
    assert vals.shape == (3, 5)
    assert np.all(vals[:, 2] == 0.0)


def test_propagate_shape_validation(chain_unified):
    engine = MultiVersionEngine(SSSP(), chain_unified)
    values = engine.new_values(2, 0)
    with pytest.raises(ValueError):
        engine.propagate(
            values, np.zeros((1, 5), dtype=bool), np.ones((2, 4), dtype=bool)
        )
    with pytest.raises(ValueError):
        engine.propagate(
            values, np.zeros((2, 5), dtype=bool), np.ones((2, 3), dtype=bool)
        )


def test_order_independence(chain_unified, algorithm):
    """Monotone convergence: applying batches in any order gives the same
    fixpoint (paper §3.2 'Generality')."""
    g = CSRGraph.from_tuples(
        4, [(0, 1, 2.0), (0, 2, 5.0), (1, 3, 2.0), (2, 3, 2.0), (1, 2, 1.0)]
    )
    u = make_static(g)
    engine = MultiVersionEngine(algorithm, u)
    base = np.array([True, True, False, False, False])
    extra = [np.array([2]), np.array([3]), np.array([4])]

    results = []
    import itertools

    for perm in itertools.permutations(range(3)):
        presence = base.copy()
        vals = engine.evaluate_full(presence, 0)
        for i in perm:
            presence = presence.copy()
            presence[extra[i]] = True
            engine.apply_additions(vals[None, :], extra[i], presence[None, :])
        results.append(vals)
    for r in results[1:]:
        assert np.allclose(results[0], r)


# -- group_argbest -----------------------------------------------------------


def test_group_argbest_min():
    keys = np.array([3, 1, 3, 1, 2])
    cand = np.array([5.0, 2.0, 4.0, 1.0, 9.0])
    uk, best = group_argbest(keys, cand, minimize=True)
    assert uk.tolist() == [1, 2, 3]
    assert cand[best].tolist() == [1.0, 9.0, 4.0]


def test_group_argbest_max():
    keys = np.array([0, 0, 1])
    cand = np.array([1.0, 7.0, 2.0])
    uk, best = group_argbest(keys, cand, minimize=False)
    assert cand[best].tolist() == [7.0, 2.0]


def test_group_argbest_ties_break_low_index():
    keys = np.array([0, 0])
    cand = np.array([5.0, 5.0])
    __, best = group_argbest(keys, cand, minimize=True)
    assert best.tolist() == [0]


def test_group_argbest_empty():
    uk, best = group_argbest(np.empty(0, dtype=np.int64), np.empty(0), True)
    assert uk.size == 0 and best.size == 0
