"""Tests for the reuse and activity metrics (Figs. 3-5, 16-18)."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.metrics import (
    applied_edge_counts,
    batch_touch_sets,
    edge_reuse_across_snapshots,
    edge_reuse_same_snapshot,
    workflow_activity,
)
from repro.metrics.reuse import _mean_pairwise_overlap


@pytest.fixture(scope="module")
def sssp():
    return get_algorithm("sssp")


def test_batch_touch_sets_shape(small_scenario, sssp):
    sets = batch_touch_sets(small_scenario, sssp)
    n = small_scenario.n_snapshots
    # Direct-Hop chains: snapshot k applies n-1 batches
    assert len(sets) == n * (n - 1)
    for snapshot, batch_id, mask in sets:
        assert 0 <= snapshot < n
        assert mask.dtype == bool
        assert mask.shape == (small_scenario.unified.n_union_edges,)


def test_reuse_asymmetry(small_scenario, sssp):
    """The paper's core motivation: Fig. 5 >> Fig. 4."""
    same = edge_reuse_same_snapshot(small_scenario, sssp)
    across = edge_reuse_across_snapshots(small_scenario, sssp)
    assert across > 0.9
    assert same < 0.2
    assert across > 5 * same


def test_reuse_fractions_bounded(tiny_scenario, sssp):
    assert 0.0 <= edge_reuse_same_snapshot(tiny_scenario, sssp) <= 1.0
    assert 0.0 <= edge_reuse_across_snapshots(tiny_scenario, sssp) <= 1.0


def test_mean_pairwise_overlap_basics():
    a = np.array([True, True, False, False])
    b = np.array([True, False, True, False])
    assert _mean_pairwise_overlap([a, b]) == pytest.approx(0.5)
    assert _mean_pairwise_overlap([a]) == 1.0
    empty = np.zeros(4, dtype=bool)
    assert _mean_pairwise_overlap([empty, empty]) == 1.0


def test_applied_edge_counts_ratios(small_scenario):
    counts = applied_edge_counts(small_scenario)
    n = small_scenario.n_snapshots
    dh_ratio = counts["direct-hop"] / counts["streaming"]
    assert dh_ratio == pytest.approx(n / 2, rel=0.05)  # the Fig. 3 "8x"
    assert 1.5 <= counts["work-sharing"] / counts["streaming"] <= 3.5


def test_workflow_activity_ordering(small_scenario, sssp):
    """Figs. 16-18: BOE < WS < DH on all three memory metrics."""
    acts = {
        wf: workflow_activity(small_scenario, sssp, wf)
        for wf in ("direct-hop", "work-sharing", "boe")
    }
    for attr in ("edge_reads", "vertex_reads", "vertex_writes", "events"):
        boe = getattr(acts["boe"], attr)
        ws = getattr(acts["work-sharing"], attr)
        dh = getattr(acts["direct-hop"], attr)
        assert boe < ws < dh, attr


def test_workflow_activity_fields(tiny_scenario, sssp):
    act = workflow_activity(tiny_scenario, sssp, "boe")
    assert act.workflow == "boe"
    assert act.rounds > 0
    assert act.vertex_reads >= act.vertex_writes
