"""Tests for the PE cluster and prefetcher models."""

import numpy as np
import pytest

from repro.accel.config import mega_config
from repro.accel.eventsim import EventLevelSimulator
from repro.accel.prefetch import PrefetchModel
from repro.accel.processor import PECluster, ProcessingEngine
from repro.algorithms import SSSP
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


# -- ProcessingEngine -----------------------------------------------------------


def test_pe_execute_cycle_arithmetic():
    pe = ProcessingEngine(0, gen_units=4)
    assert pe.execute(0) == 1      # pop + apply only
    assert pe.execute(4) == 2      # one generation wave
    assert pe.execute(5) == 3      # two waves
    assert pe.busy_cycles == 6
    assert pe.events_executed == 3
    assert pe.events_generated == 9


def test_pe_rejects_negative_degree():
    with pytest.raises(ValueError):
        ProcessingEngine(0).execute(-1)


# -- PECluster -------------------------------------------------------------------


def test_cluster_balances_events():
    cluster = PECluster(n_pes=4, gen_units=4)
    cycles = cluster.dispatch_round([0] * 8)  # 8 unit events over 4 PEs
    assert cycles == 2
    assert cluster.utilization() == 1.0


def test_cluster_high_degree_skew():
    """One whale vertex dominates the round's makespan (why the paper
    gives each PE four generation streams)."""
    cluster = PECluster(n_pes=4, gen_units=4)
    cycles = cluster.dispatch_round([400, 0, 0, 0])
    assert cycles == 1 + 100
    assert cluster.load_imbalance() > 2.0


def test_cluster_rounds_are_barriers():
    cluster = PECluster(n_pes=2, gen_units=4)
    first = cluster.dispatch_round([8, 0])
    second = cluster.dispatch_round([0, 0])
    assert cluster.makespan == first + second


def test_cluster_empty_round():
    cluster = PECluster(n_pes=2)
    assert cluster.dispatch_round([]) == 0
    assert cluster.utilization() == 0.0
    assert cluster.load_imbalance() == 1.0


def test_cluster_validates():
    with pytest.raises(ValueError):
        PECluster(n_pes=0)


def test_eventsim_reports_pe_cycles():
    g = CSRGraph.from_edges(rmat_edges(48, 300, seed=5))
    none = np.full(g.n_edges, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    sim = EventLevelSimulator(SSSP(), u)
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    sim.run()
    assert sim.stats.pe_cycles > 0
    assert sim.pes.total_busy >= sim.stats.events_processed


# -- prefetcher ----------------------------------------------------------------


def test_prefetch_coverage_monotone():
    model = PrefetchModel(mega_config())
    prev = -1.0
    for events in (0, 1, 10, 100, 1000):
        c = model.coverage(events)
        assert 0.0 <= c <= model.max_coverage
        assert c >= prev
        prev = c


def test_prefetch_saturates():
    model = PrefetchModel(mega_config())
    assert model.coverage(10**9) == pytest.approx(model.max_coverage)


def test_prefetch_latency_shrinks_with_occupancy():
    model = PrefetchModel(mega_config())
    big = model.latency_cycles(10_000)
    small = model.latency_cycles(2)
    assert big < small <= mega_config().dram_latency_cycles


def test_prefetch_zero_events_full_latency():
    model = PrefetchModel(mega_config())
    assert model.latency_cycles(0) == mega_config().dram_latency_cycles
