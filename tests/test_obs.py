"""Observability subsystem + the four PR-5 regression suites.

Covers, in order:

* the metrics primitives (counter/gauge/histogram/registry/render);
* the EWMA lost-update regression (gauge RMW must be atomic);
* span timelines: monotonicity, stage derivation, percentile folding;
* the drain race regression (accepted-but-unplanned queries must block
  ``drain()``);
* the missing-source regression (a plan result lacking a query's source
  resolves as error and is never cached);
* concurrent plan completions (counters and in-flight bookkeeping stay
  consistent under parallel done-callbacks);
* the ``--snapshots 1`` load-harness regression;
* sampled kernel profiling (zero-cost guard, engine sections, merge).

Concurrency tests are deterministic: they synchronize on events and
barriers, never on sleeps.
"""

from __future__ import annotations

import math
import sys
import threading
from concurrent.futures import Future

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    RoundProfiler,
    active_profiler,
    merge_profiles,
    profiled,
)
from repro.obs.trace import STAGES, QueryTrace, stage_percentiles
from repro.service import (
    LoadSpec,
    PendingQuery,
    QueryRequest,
    QueryService,
    ServiceConfig,
    ServiceFrontend,
    run_load,
)
from repro.service.loadgen import _plan_arrivals
from repro.service.pool import PlanResult
from repro.service.request import SnapshotSummary

pytestmark = pytest.mark.timeout(120)


def _tiny_config(**kw) -> ServiceConfig:
    defaults = dict(
        scale="tiny", n_snapshots=4, workers=1, coalesce_ms=1.0,
        use_shm=False,
    )
    defaults.update(kw)
    return ServiceConfig(**defaults)


# ---------------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------------


def test_counter_is_monotonic():
    c = Counter("x_total")
    c.inc()
    c.inc(4)
    assert c.get() == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_add_ewma():
    g = Gauge("g", initial=1.0)
    g.set(3.0)
    g.add(-0.5)
    assert g.get() == pytest.approx(2.5)
    out = g.ewma(0.0, alpha=0.5)
    assert out == pytest.approx(1.25)
    assert g.get() == pytest.approx(1.25)


def test_histogram_buckets_are_cumulative():
    h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.get()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.555)
    assert snap["buckets"] == {0.01: 1, 0.1: 2, 1.0: 3}


def test_registry_is_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    a = reg.counter("n_total", "help text")
    assert reg.counter("n_total") is a
    with pytest.raises(ValueError):
        reg.gauge("n_total")
    reg.gauge_fn("cb", lambda: 7)
    assert reg.snapshot()["cb"] == 7.0


def test_callback_gauge_never_raises():
    reg = MetricsRegistry()
    reg.gauge_fn("boom", lambda: 1 / 0)
    assert math.isnan(reg.get("boom").get())
    # and a scrape over it still renders
    assert "boom" in reg.render()


def test_render_is_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("a_total", "things").inc(2)
    reg.gauge("b", "level").set(1.5)
    reg.histogram("h", buckets=(0.5,)).observe(0.1)
    text = reg.render()
    assert text.endswith("\n")
    assert "# HELP a_total things" in text
    assert "# TYPE a_total counter" in text
    assert "a_total 2" in text
    assert "b 1.5" in text
    assert 'h_bucket{le="0.5"} 1' in text
    assert 'h_bucket{le="+Inf"} 1' in text
    assert "h_count 1" in text
    # every sample line parses as "name value"
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)


# ---------------------------------------------------------------------------
# regression: the plan-latency EWMA was an unlocked read-modify-write
# ---------------------------------------------------------------------------


def test_gauge_add_loses_no_updates_under_contention():
    """Atomic RMW: N threads x M increments must land exactly N*M."""
    g = Gauge("g")
    n_threads, n_incs = 8, 2000
    barrier = threading.Barrier(n_threads)
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)  # amplify interleaving

    def work():
        barrier.wait()
        for __ in range(n_incs):
            g.add(1.0)

    try:
        threads = [threading.Thread(target=work) for __ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        sys.setswitchinterval(old_interval)
    assert g.get() == n_threads * n_incs


def test_gauge_ewma_is_a_serialized_interleaving():
    """Two concurrent ewma samples must fold in *some* order — the final
    value is one of the two serialized outcomes, never a torn mix."""
    outcomes = set()
    for __ in range(50):
        g = Gauge("g", initial=0.0)
        barrier = threading.Barrier(2)

        def fold(sample, g=g, barrier=barrier):
            barrier.wait()
            g.ewma(sample, alpha=0.2)

        t1 = threading.Thread(target=fold, args=(1.0,))
        t2 = threading.Thread(target=fold, args=(0.5,))
        t1.start(); t2.start(); t1.join(); t2.join()
        outcomes.add(round(g.get(), 6))
    # order a: 0.2*1.0=0.2 then 0.8*0.2+0.2*0.5=0.26
    # order b: 0.2*0.5=0.1 then 0.8*0.1+0.2*1.0=0.28
    assert outcomes <= {0.26, 0.28}


def test_service_ewma_feeds_retry_after(tmp_path):
    svc = QueryService(_tiny_config())
    try:
        assert svc._plan_ewma.get() == pytest.approx(0.05)
        fut = Future()
        fut.set_result(
            PlanResult(plan_id=1, epoch=0, summaries={}, elapsed_s=1.0)
        )
        svc._on_plan_done(1, [], fut)
        assert svc._plan_ewma.get() == pytest.approx(0.8 * 0.05 + 0.2 * 1.0)
        assert svc.retry_after_hint() > 0.05
    finally:
        svc.stop(drain=False)


# ---------------------------------------------------------------------------
# span timelines
# ---------------------------------------------------------------------------


def test_trace_first_mark_wins_and_stages_derive():
    tr = QueryTrace()
    tr.mark("admit", 10.0)
    tr.mark("plan_submit", 10.1)
    tr.mark("plan_submit", 99.0)  # a retry must not overwrite
    tr.mark("worker_start", 10.2)
    tr.mark("worker_end", 10.25)
    tr.mark("resolve", 10.3)
    stages = tr.stage_durations_ms()
    assert stages["admit_to_plan"] == pytest.approx(100.0)
    assert stages["plan_to_worker"] == pytest.approx(100.0)
    assert stages["worker"] == pytest.approx(50.0)
    assert stages["total"] == pytest.approx(300.0)


def test_trace_clamps_clock_skew_to_zero():
    tr = QueryTrace()
    tr.mark("worker_start", 5.0)
    tr.mark("worker_end", 4.0)
    assert tr.stage_durations_ms()["worker"] == 0.0


def test_trace_as_dict_offsets_from_admit():
    tr = QueryTrace()
    tr.mark("admit", 2.0)
    tr.mark("resolve", 2.5)
    doc = tr.as_dict()
    assert doc["marks_ms"] == {"admit": 0.0, "resolve": 500.0}
    assert doc["stages_ms"]["total"] == pytest.approx(500.0)


def test_stage_percentiles_folds_known_values():
    dicts = [{"worker": float(v)} for v in range(1, 101)]
    out = stage_percentiles(dicts)
    assert out["worker"]["n"] == 100
    assert out["worker"]["p50"] == pytest.approx(50.5)
    assert out["worker"]["p99"] == pytest.approx(99.01)
    assert out["worker"]["mean"] == pytest.approx(50.5)


def test_query_response_reports_stage_breakdown():
    svc = QueryService(_tiny_config()).start()
    try:
        handle = svc.submit(QueryRequest(graph="PK", algo="bfs", source=0))
        response = handle.wait(timeout=60)
        assert response is not None and response.status == "ok"
        # the timeline crossed every stage, in order
        marks = handle.trace.marks
        crossed = [s for s in STAGES if s in marks]
        assert crossed == list(STAGES)
        assert all(
            marks[a] <= marks[b]
            for a, b in zip(crossed, crossed[1:])
        )
        stages = response.stages
        assert stages is not None and "worker" in stages
        assert stages["total"] >= 0.0
        assert response.as_dict()["stages_ms"]["worker"] >= 0.0
        # cache hits carry a partial timeline (no worker stage)
        cached = svc.submit(
            QueryRequest(graph="PK", algo="bfs", source=0)
        ).wait(timeout=60)
        assert cached.status == "cached"
        assert "worker" not in (cached.stages or {})
    finally:
        svc.stop()


# ---------------------------------------------------------------------------
# regression: drain() vs. queries the batcher holds un-submitted
# ---------------------------------------------------------------------------


def test_drain_waits_for_batcher_held_queries(monkeypatch):
    """A query drained from the queue but not yet bound to a plan must
    keep ``drain()`` returning False — pre-fix it was invisible (queue
    empty, nothing in flight) and ``stop(drain=True)`` could shut the
    pool under it."""
    import repro.service.core as core_mod

    inside = threading.Event()
    release = threading.Event()
    real_coalesce = core_mod.coalesce

    def slow_coalesce(pending, max_batch):
        inside.set()
        assert release.wait(timeout=60)
        return real_coalesce(pending, max_batch)

    monkeypatch.setattr(core_mod, "coalesce", slow_coalesce)
    svc = QueryService(_tiny_config()).start()
    try:
        handle = svc.submit(QueryRequest(graph="PK", algo="bfs", source=1))
        assert inside.wait(timeout=60)  # batcher holds the drained query
        assert len(svc.queue) == 0
        assert not svc._inflight
        # the fix: the accepted-but-unplanned count keeps drain honest
        assert not svc.drain(timeout=0.3)
        release.set()
        assert svc.drain(timeout=60)
        assert handle.wait(timeout=60).status == "ok"
    finally:
        release.set()
        svc.stop(drain=False)


def test_unplanned_count_returns_to_zero_on_shed():
    svc = QueryService(_tiny_config())
    try:
        # expired before the batcher ever runs (service not started)
        handle = svc.submit(
            QueryRequest(graph="PK", algo="bfs", source=0, deadline_s=1e-9)
        )
        svc.start()
        assert handle.wait(timeout=60).status == "shed"
        assert svc.drain(timeout=60)
        assert svc._unplanned == 0
    finally:
        svc.stop(drain=False)


# ---------------------------------------------------------------------------
# regression: plan results missing a query's source were cached as ok-empty
# ---------------------------------------------------------------------------


def _done_future(result) -> Future:
    fut = Future()
    fut.set_result(result)
    return fut


def test_missing_source_resolves_error_and_never_caches():
    svc = QueryService(_tiny_config())
    try:
        request = QueryRequest(graph="PK", algo="bfs", source=3)
        pending = PendingQuery(request, epoch=0)
        result = PlanResult(plan_id=7, epoch=0, summaries={})  # no source 3
        svc._on_plan_done(7, [pending], _done_future(result))
        response = pending.wait(timeout=5)
        assert response.status == "error"
        assert "missing source 3" in response.error
        assert svc.stats.get("missing_source") == 1
        assert svc.stats.get("errored") == 1
        assert svc.stats.get("completed") == 0
        # the poison outcome pre-fix: a permanently cached empty answer
        assert svc.cache.get(request, epoch=0) is None
        assert svc.service_stats()["missing_source"] == 1
    finally:
        svc.stop(drain=False)


def test_present_sources_still_complete_alongside_missing():
    svc = QueryService(_tiny_config())
    try:
        ok_req = QueryRequest(graph="PK", algo="bfs", source=1)
        bad_req = QueryRequest(graph="PK", algo="bfs", source=2)
        ok, bad = PendingQuery(ok_req, 0), PendingQuery(bad_req, 0)
        summaries = {1: [SnapshotSummary(0, 5, 4.0)]}
        result = PlanResult(plan_id=9, epoch=0, summaries=summaries)
        svc._on_plan_done(9, [ok, bad], _done_future(result))
        assert ok.wait(timeout=5).status == "ok"
        assert bad.wait(timeout=5).status == "error"
        assert svc.cache.get(ok_req, 0) is not None
        assert svc.cache.get(bad_req, 0) is None
    finally:
        svc.stop(drain=False)


# ---------------------------------------------------------------------------
# concurrent plan completions stay consistent
# ---------------------------------------------------------------------------


def test_concurrent_plan_completions_keep_books_straight():
    svc = QueryService(_tiny_config())
    try:
        n_plans, per_plan = 16, 4
        plans = []
        for pid in range(1, n_plans + 1):
            queries = [
                PendingQuery(
                    QueryRequest(graph="PK", algo="bfs", source=s), 0
                )
                for s in range(per_plan)
            ]
            summaries = {
                s: [SnapshotSummary(0, 1, 1.0)] for s in range(per_plan)
            }
            with svc._inflight_lock:
                svc._inflight.add(pid)
            plans.append(
                (pid, queries,
                 PlanResult(plan_id=pid, epoch=0, summaries=summaries,
                            elapsed_s=0.01))
            )
        barrier = threading.Barrier(n_plans)
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)

        def complete(pid, queries, result):
            barrier.wait()
            svc._on_plan_done(pid, queries, _done_future(result))

        try:
            threads = [
                threading.Thread(target=complete, args=plan)
                for plan in plans
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert svc.stats.get("completed") == n_plans * per_plan
        assert not svc._inflight
        for __, queries, __r in plans:
            for q in queries:
                assert q.wait(timeout=5).status == "ok"
        # the latency histogram saw every resolution
        assert svc._latency.get()["count"] == n_plans * per_plan
    finally:
        svc.stop(drain=False)


# ---------------------------------------------------------------------------
# regression: serve-bench crashed with --snapshots 1 and a window fraction
# ---------------------------------------------------------------------------


def test_plan_arrivals_single_snapshot_windows():
    import numpy as np

    cfg = ServiceConfig(scale="tiny", n_snapshots=1)
    spec = LoadSpec(
        duration_s=1.0, rate_qps=200.0, seed=1, window_fraction=1.0
    )
    pools = {"PK": [0, 1, 2]}
    arrivals = _plan_arrivals(cfg, spec, np.random.default_rng(1), pools)
    assert arrivals
    windows = {req.window for __, req in arrivals}
    assert windows == {(0, 0)}  # the only valid window at 1 snapshot


def test_serve_bench_single_snapshot_end_to_end():
    cfg = _tiny_config(n_snapshots=1)
    spec = LoadSpec(
        duration_s=0.4, rate_qps=40.0, seed=2, window_fraction=0.5,
        trace_sample=3,
    )
    with QueryService(cfg) as svc:
        report = run_load(svc, spec)
    r = report.results
    assert not report.degraded
    assert r["submitted"] > 0 and r["errored"] == 0
    assert "total" in r["stage_latency_ms"]
    assert 0 < len(r["traces"]) <= 3
    for tr in r["traces"]:
        assert set(tr) >= {"id", "status", "marks_ms", "stages_ms"}


# ---------------------------------------------------------------------------
# metrics threaded through the service + frontend
# ---------------------------------------------------------------------------


def test_metrics_op_renders_service_instruments():
    svc = QueryService(_tiny_config(use_shm=True)).start()
    try:
        svc.submit(QueryRequest(graph="PK", algo="bfs", source=0)).wait(60)
        frontend = ServiceFrontend(svc)
        out = frontend.handle_line('{"op": "metrics"}')
        assert out["ok"]
        text = out["metrics"]
        for name in (
            "mega_queue_depth",
            "mega_inflight_plans",
            "mega_unplanned_queries",
            "mega_result_cache_entries",
            "mega_result_cache_hit_rate",
            "mega_wal_enabled",
            "mega_wal_records",
            "mega_shm_enabled",
            "mega_shm_segments",
            "mega_pool_restarts",
            "mega_plan_ewma_seconds",
            "mega_query_latency_seconds_bucket",
            "mega_service_submitted_total",
            "mega_service_missing_source_total",
        ):
            assert name in text, f"missing {name}"
        assert "mega_service_submitted_total 1" in text
    finally:
        svc.stop()


def test_stats_snapshot_shape_is_preserved():
    svc = QueryService(_tiny_config())
    try:
        stats = svc.service_stats()
        for key in (
            "submitted", "completed", "cached", "errored", "rejected",
            "shed", "plans", "plan_queries", "retries", "faults_recovered",
            "ingests", "drain_timeouts", "wal_records", "wal_compactions",
            "batching_factor", "cache", "missing_source",
        ):
            assert key in stats
    finally:
        svc.stop(drain=False)


# ---------------------------------------------------------------------------
# sampled kernel profiling
# ---------------------------------------------------------------------------


def test_profiler_disabled_by_default():
    assert active_profiler() is None


def test_profiler_samples_every_n():
    prof = RoundProfiler(sample_every=3)
    hits = [prof.sample() for __ in range(9)]
    assert hits == [False, False, True] * 3
    prof.add("apply", 0.002)
    snap = prof.snapshot()
    assert snap["rounds_seen"] == 9
    assert snap["sections"]["apply"]["rounds"] == 1
    assert snap["sections"]["apply"]["mean_us"] == pytest.approx(2000.0)


def test_profiled_scope_restores_previous():
    with profiled(2) as prof:
        assert active_profiler() is prof
        with profiled(1) as inner:
            assert active_profiler() is inner
        assert active_profiler() is prof
    assert active_profiler() is None


def test_merge_profiles_folds_workers():
    a = {"sample_every": 4, "rounds_seen": 8,
         "sections": {"apply": {"rounds": 2, "total_s": 0.2, "mean_us": 0}}}
    b = {"sample_every": 4, "rounds_seen": 4,
         "sections": {"apply": {"rounds": 1, "total_s": 0.1, "mean_us": 0},
                      "edge_gather": {"rounds": 1, "total_s": 0.3,
                                      "mean_us": 0}}}
    merged = merge_profiles([a, {}, b])
    assert merged["rounds_seen"] == 12
    assert merged["sections"]["apply"]["rounds"] == 3
    assert merged["sections"]["apply"]["total_s"] == pytest.approx(0.3)
    assert merged["sections"]["apply"]["mean_us"] == pytest.approx(1e5)
    assert merged["sections"]["edge_gather"]["rounds"] == 1


def test_engine_records_sections_when_profiled(tiny_scenario):
    from repro.algorithms import get_algorithm
    from repro.core.multi_query import evaluate_multi_query

    with profiled(1) as prof:
        evaluate_multi_query(tiny_scenario, get_algorithm("bfs"), [0, 1])
    snap = prof.snapshot()
    assert snap["rounds_seen"] > 0
    assert "edge_gather" in snap["sections"]
    # the compiled backend fuses relax+apply into one kernel section
    assert "apply" in snap["sections"] or "fused_relax" in snap["sections"]
    # the same run without a profiler records nothing anywhere
    evaluate_multi_query(tiny_scenario, get_algorithm("bfs"), [0, 1])
    assert active_profiler() is None


def test_service_aggregates_worker_profiles():
    svc = QueryService(_tiny_config(profile_rounds=1)).start()
    try:
        response = svc.submit(
            QueryRequest(graph="PK", algo="bfs", source=0)
        ).wait(timeout=60)
        assert response.status == "ok"
        prof = svc.round_profile()
        assert prof.get("sections"), "worker profile never reached the service"
        assert "edge_gather" in prof["sections"]
    finally:
        svc.stop()
