"""Tests for the high-level engine facade and the multi-query extension."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.core import EvolvingGraphEngine, evaluate_multi_query, multi_query_boe_plan
from repro.engines.validation import evaluate_reference
from repro.schedule.plan import ApplyEdges


@pytest.fixture(scope="module")
def engine(request):
    from repro.workloads import load_scenario

    return EvolvingGraphEngine(
        load_scenario("PK", "tiny", n_snapshots=6), "sssp"
    )


def test_engine_accepts_algorithm_name_or_instance(engine):
    assert engine.algorithm.name == "SSSP"
    e2 = EvolvingGraphEngine(engine.scenario, get_algorithm("bfs"))
    assert e2.algorithm.name == "BFS"


def test_evaluate_validates(engine):
    result = engine.evaluate("boe", validate=True)
    assert len(result.snapshot_values) == engine.scenario.n_snapshots


def test_evaluate_rejects_unknown_workflow(engine):
    with pytest.raises(KeyError):
        engine.evaluate("bogus")


def test_evaluate_window(engine):
    result = engine.evaluate_window(1, 3, validate=True)
    expected = evaluate_reference(engine.scenario, engine.algorithm, 2)
    assert np.allclose(result.values(1), expected, equal_nan=True)


def test_reuse_profile_asymmetry(engine):
    profile = engine.reuse_profile()
    assert profile["across_snapshots"] > profile["same_snapshot"]


def test_compare_accelerators(engine):
    reports = engine.compare_accelerators()
    assert set(reports) == {
        "jetstream", "direct-hop", "work-sharing", "boe", "boe+bp",
    }
    assert reports["boe+bp"].speedup_over(reports["jetstream"]) > 1.0


def test_simulate_mega_validate(engine):
    report = engine.simulate_mega("boe", pipeline=False, validate=True)
    assert report.cycles > 0


# -- multi-query -----------------------------------------------------------------


def test_multi_query_matches_independent_queries(engine):
    scenario, algo = engine.scenario, engine.algorithm
    degrees = np.diff(scenario.common_graph().indptr)
    sources = [int(i) for i in np.argsort(degrees)[-3:]]
    mq = evaluate_multi_query(scenario, algo, sources)
    for q, source in enumerate(sources):
        for k in range(scenario.n_snapshots):
            single = type(scenario)(
                scenario.unified, source=source, name="single"
            )
            expected = evaluate_reference(single, algo, k)
            assert np.allclose(
                mq.values(q, k), expected, equal_nan=True
            ), (q, k)


def test_multi_query_shares_fetches(engine):
    """Batch fetch traffic grows far sublinearly with the query count:
    the batch edges are fetched once per step for all queries, and only
    the propagation frontiers' (small) divergence adds fetches."""
    scenario, algo = engine.scenario, engine.algorithm
    one = evaluate_multi_query(scenario, algo, [scenario.source])
    three = evaluate_multi_query(scenario, algo, [scenario.source, 1, 2])

    def batch_fetches(result):
        return sum(
            e.edges_fetched
            for e in result.collector.executions
            if e.phase == "add"
        )

    assert batch_fetches(three) < 2 * batch_fetches(one)
    # the per-batch seeding round is shared exactly: one fetch per edge
    first_add = next(
        e for e in three.collector.executions if e.phase == "add"
    )
    seed = first_add.rounds[0]
    assert seed.edges_fetched <= seed.version_events_generated


def test_multi_query_plan_structure(engine):
    u = engine.scenario.unified
    plan = multi_query_boe_plan(u, [0, 5])
    n = u.n_snapshots
    assert plan.n_states == 2 * n
    adds = [
        s
        for s in plan.steps
        if isinstance(s, ApplyEdges) and s.batches[0].kind.value == "add"
    ]
    # stage i targets (n-1-i) snapshots for each of the two queries
    for s in adds:
        i = s.batches[0].step
        assert len(s.targets) == 2 * (n - 1 - i)


def test_multi_query_requires_sources(engine):
    with pytest.raises(ValueError):
        multi_query_boe_plan(engine.scenario.unified, [])


def test_multi_query_result_bounds(engine):
    mq = evaluate_multi_query(engine.scenario, engine.algorithm, [0])
    with pytest.raises(IndexError):
        mq.values(1, 0)


def test_simulate_multi_query(engine):
    from repro.core.multi_query import simulate_multi_query

    report, mq = simulate_multi_query(
        engine.scenario, engine.algorithm, [engine.scenario.source, 1]
    )
    assert report.update_cycles > 0
    assert mq.values(0, 0) is not None
    # correctness of the simulated run, query 0 == scenario source
    expected = evaluate_reference(engine.scenario, engine.algorithm, 0)
    assert np.allclose(mq.values(0, 0), expected, equal_nan=True)
