"""Stateful property tests (hypothesis rule-based machines).

Random interleavings of operations against the microarchitectural state
holders — the coalescing event queue and the version table — checked
against simple reference models.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.accel.event import Event
from repro.accel.queue import EventQueue
from repro.accel.version_table import VersionTable
from repro.algorithms import SSSP
from repro.evolving.batches import BatchId, BatchKind

N_VERTICES = 16
N_VERSIONS = 3


class QueueMachine(RuleBasedStateMachine):
    """The banked queue behaves like a dict keyed by (vertex, version)
    holding the best payload seen since the last pop."""

    def __init__(self):
        super().__init__()
        self.queue = EventQueue(SSSP(), n_bins=4, n_versions=N_VERSIONS)
        self.model: dict[tuple[int, int], float] = {}

    @rule(
        vertex=st.integers(0, N_VERTICES - 1),
        version=st.integers(0, N_VERSIONS - 1),
        payload=st.floats(0.0, 100.0, allow_nan=False),
    )
    def insert(self, vertex, version, payload):
        self.queue.insert(Event(vertex, payload, version=version))
        key = (vertex, version)
        best = self.model.get(key)
        self.model[key] = payload if best is None else min(best, payload)

    @rule()
    def pop_round(self):
        events = self.queue.pop_round()
        got = {(e.vertex, e.version): e.payload for e in events}
        assert got == self.model
        self.model = {}

    @invariant()
    def occupancy_matches(self):
        assert self.queue.occupancy() == len(self.model)


class VersionTableMachine(RuleBasedStateMachine):
    """Aliasing + batch composition agree with a per-snapshot set model."""

    def __init__(self):
        super().__init__()
        self.n = 5
        self.table = VersionTable(self.n)
        self.model = [set() for __ in range(self.n)]
        # snapshots aliasing the chain share composition with snapshot 0
        self.aliased = set(range(1, self.n))
        self.counter = 0

    @rule(snapshot=st.integers(1, 4))
    def peel(self, snapshot):
        if snapshot in self.aliased:
            self.model[snapshot] = set(self.model[0])
            self.aliased.discard(snapshot)
        self.table.peel(snapshot)

    @rule(data=st.data())
    def apply_batch(self, data):
        # pick a target group: the chain (0 + aliased) or a peeled snapshot
        peeled = sorted(set(range(self.n)) - self.aliased - {0})
        choices = ["chain"] + peeled
        target = data.draw(st.sampled_from(choices))
        self.counter += 1
        batch = BatchId(BatchKind.ADDITION, self.counter % 1000)
        if self.table.batch_status.get(batch) is not None:
            return
        if target == "chain":
            targets = [0] + sorted(self.aliased)
            self.table.begin_batch(batch, targets)
            self.table.finish_batch(batch, targets)
            self.model[0].add(batch)
        else:
            self.table.begin_batch(batch, [target])
            self.table.finish_batch(batch, [target])
            self.model[target].add(batch)

    @invariant()
    def compositions_agree(self):
        for k in range(self.n):
            expected = (
                self.model[0] if k in self.aliased or k == 0 else self.model[k]
            )
            assert self.table.composition(k) == expected, k


TestQueueMachine = QueueMachine.TestCase
TestQueueMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestVersionTableMachine = VersionTableMachine.TestCase
TestVersionTableMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
