"""Unit tests for the wave scheduler and the timing model."""

import numpy as np
import pytest

from repro.accel.cache import EdgeCacheModel
from repro.accel.config import mega_config
from repro.accel.memory import MemorySystem, PartitionPlan
from repro.accel.scheduler import Wave, WaveScheduler
from repro.accel.stats import SimCounters
from repro.accel.timing import TimingModel
from repro.engines.trace import ExecutionTrace, RoundTrace
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


def make_round(
    events=64,
    generated=256,
    blocks=8,
    phase="add",
    n_versions=1,
    dsts=32,
):
    return RoundTrace(
        phase=phase,
        events_popped=events,
        events_generated=generated,
        edges_fetched=generated,
        edge_blocks=np.arange(blocks),
        vertex_reads=events + generated,
        vertex_writes=events,
        n_versions=n_versions,
        dst_vertices=np.arange(dsts),
        src_vertices=np.arange(events),
        version_events_popped=events * n_versions,
        version_events_generated=generated * n_versions,
        version_vertex_writes=events * n_versions,
    )


def make_execution(rounds, tag="x", phase="add", targets=(0,)):
    e = ExecutionTrace(tag, phase, targets, rounds)
    e.touched_dst_count = max((r.dst_vertices.size for r in rounds), default=0)
    return e


@pytest.fixture
def timing():
    g = CSRGraph.from_edges(rmat_edges(256, 2048, seed=0))
    cfg = mega_config(capacity_scale=1.0)
    memory = MemorySystem(cfg, g)
    cache = EdgeCacheModel(64, 1024)
    return TimingModel(cfg, memory, cache)


def unpartitioned():
    return PartitionPlan(1, 0.0, 0.0, 0.0)


def partitioned(n=4, cross=0.5):
    return PartitionPlan(n, 1e6, 2e6, cross)


# -- timing model -------------------------------------------------------------


def test_round_cost_components_positive(timing):
    counters = SimCounters()
    cost = timing.round_group_cost(
        [(make_round(), unpartitioned())], counters
    )
    assert cost.pe > 0 and cost.queue > 0 and cost.noc > 0
    assert cost.total >= max(cost.pe, cost.queue, cost.noc, cost.dram)
    assert counters.events_popped == 64
    assert counters.rounds == 1


def test_round_cost_is_max_not_sum(timing):
    counters = SimCounters()
    cost = timing.round_group_cost(
        [(make_round(events=8, generated=8, blocks=0), unpartitioned())],
        counters,
    )
    # tiny round: overhead dominates and cost ~ overhead + max(components)
    assert cost.total < cost.pe + cost.queue + cost.noc + cost.overhead + 5


def test_deletion_factor_inflates_pe_cost(timing):
    counters = SimCounters()
    add = timing.round_group_cost(
        [(make_round(phase="add", blocks=0), unpartitioned())], counters
    )
    tag = timing.round_group_cost(
        [(make_round(phase="del-tag", blocks=0), unpartitioned())], counters
    )
    factor = timing.config.deletion_event_factor
    assert tag.pe == pytest.approx(add.pe * factor)


def test_deletion_metadata_traffic(timing):
    counters = SimCounters()
    timing.round_group_cost(
        [(make_round(phase="del-recompute", blocks=0), unpartitioned())],
        counters,
    )
    expected = 256 * timing.config.dependence_bytes
    assert counters.dram_bytes == pytest.approx(expected)


def test_row_wide_versions_ablation():
    g = CSRGraph.from_edges(rmat_edges(64, 512, seed=1))
    cfg = mega_config(capacity_scale=1.0)
    scalar_cfg = type(cfg)(**{**cfg.__dict__, "row_wide_versions": False})
    memory = MemorySystem(cfg, g)
    cache = EdgeCacheModel(64, 1024)
    row = TimingModel(cfg, memory, cache)
    scalar = TimingModel(scalar_cfg, memory, EdgeCacheModel(64, 1024))
    r = make_round(n_versions=8, blocks=0)
    a = row.round_group_cost([(r, unpartitioned())], SimCounters())
    b = scalar.round_group_cost([(r, unpartitioned())], SimCounters())
    assert b.pe == pytest.approx(a.pe * 8)


def test_execution_spill_only_when_partitioned(timing):
    counters = SimCounters()
    assert (
        timing.execution_spill_cycles(100, 4, unpartitioned(), counters) == 0.0
    )
    assert counters.spill_bytes == 0
    cycles = timing.execution_spill_cycles(100, 4, partitioned(), counters)
    assert cycles > 0
    assert counters.spill_bytes == pytest.approx(
        100 * 0.5 * 2 * timing.config.event_bytes
    )


def test_partition_sweep_flushes_cache(timing):
    timing.cache.access_round(np.array([1, 2, 3]))
    counters = SimCounters()
    cycles = timing.partition_sweep_cycles(partitioned(), counters)
    assert cycles > 0
    hits, __ = timing.cache.access_round(np.array([1, 2, 3]))
    assert hits == 0  # flushed


# -- wave scheduler -----------------------------------------------------------


def fresh_timing():
    g = CSRGraph.from_edges(rmat_edges(256, 2048, seed=0))
    cfg = mega_config(capacity_scale=1.0)
    return TimingModel(cfg, MemorySystem(cfg, g), EdgeCacheModel(64, 1024))


def test_sequential_waves_sum():
    single = (
        WaveScheduler(fresh_timing(), pipeline=False)
        .run([Wave([make_execution([make_round()])], unpartitioned())])
        .cycles
    )
    both = (
        WaveScheduler(fresh_timing(), pipeline=False)
        .run(
            [
                Wave([make_execution([make_round()])], unpartitioned()),
                Wave([make_execution([make_round()])], unpartitioned()),
            ]
        )
        .cycles
    )
    # the second wave re-hits the warm edge cache, so it costs less than
    # the first but the total still clearly exceeds one wave
    assert single < both <= 2 * single


def test_concurrent_streams_share_overhead(timing):
    solo = WaveScheduler(timing).run(
        [Wave([make_execution([make_round()])], unpartitioned())]
    )
    merged = WaveScheduler(timing).run(
        [
            Wave(
                [
                    make_execution([make_round()], tag="a"),
                    make_execution([make_round()], tag="b"),
                ],
                unpartitioned(),
            )
        ]
    )
    # two concurrent streams cost far less than double a single one
    assert merged.cycles < 1.8 * solo.cycles
    assert merged.round_groups == 1


def test_pipelining_injects_early(timing):
    tail = [make_round(events=4, generated=4, blocks=0) for __ in range(6)]
    head = [make_round() for __ in range(3)]
    waves = [
        Wave([make_execution([make_round()] + tail, tag="first")], unpartitioned()),
        Wave([make_execution(head, tag="second")], unpartitioned()),
    ]
    plain = WaveScheduler(timing, pipeline=False).run(
        [Wave([make_execution([make_round()] + tail)], unpartitioned()),
         Wave([make_execution(head)], unpartitioned())]
    )
    piped = WaveScheduler(timing, pipeline=True, threshold_events=64).run(waves)
    assert piped.waves_injected_early >= 1
    assert piped.cycles < plain.cycles


def test_phase_cycles_accounted(timing):
    outcome = WaveScheduler(timing).run(
        [
            Wave([make_execution([make_round()], phase="full")], unpartitioned()),
            Wave([make_execution([make_round()], phase="add")], unpartitioned()),
        ]
    )
    assert set(outcome.phase_cycles) == {"full", "add"}
    assert sum(outcome.phase_cycles.values()) == pytest.approx(outcome.cycles)


def test_empty_executions_skipped(timing):
    outcome = WaveScheduler(timing).run(
        [Wave([make_execution([], tag="empty")], unpartitioned())]
    )
    assert outcome.cycles == 0.0
    assert outcome.round_groups == 0
