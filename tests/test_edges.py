"""Unit tests for the EdgeList primitive."""

import numpy as np
import pytest

from repro.graph.edges import EdgeList, edge_keys


def test_from_tuples_roundtrip():
    e = EdgeList.from_tuples(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)])
    assert len(e) == 3
    assert e.as_tuples() == [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]


def test_from_tuples_without_weights_defaults_to_one():
    e = EdgeList.from_tuples(3, [(0, 1), (1, 2)])
    assert np.all(e.wt == 1.0)


def test_from_tuples_empty():
    e = EdgeList.from_tuples(3, [])
    assert len(e) == 0
    assert e.has_unique_pairs()


def test_vertex_range_validation():
    with pytest.raises(ValueError):
        EdgeList.from_tuples(2, [(0, 5)])
    with pytest.raises(ValueError):
        EdgeList(2, np.array([-1]), np.array([0]), np.array([1.0]))


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        EdgeList(3, np.array([0, 1]), np.array([1]), np.array([1.0, 2.0]))


def test_edge_keys_unique_and_orderable():
    e = EdgeList.from_tuples(10, [(0, 1), (1, 0), (9, 9)])
    k = e.keys
    assert len(set(k.tolist())) == 3
    assert k[0] == 1 and k[1] == 10 and k[2] == 99


def test_edge_keys_collision_free_for_distinct_pairs(rng):
    n = 50
    src = rng.integers(0, n, 500)
    dst = rng.integers(0, n, 500)
    keys = edge_keys(src, dst, n)
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert len(set(keys.tolist())) == len(pairs)


def test_select_by_mask_and_index():
    e = EdgeList.from_tuples(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    by_mask = e.select(np.array([True, False, True]))
    by_idx = e.select(np.array([0, 2]))
    assert by_mask.as_tuples() == by_idx.as_tuples() == [(0, 1, 1.0), (2, 3, 3.0)]


def test_concat_preserves_all_edges():
    a = EdgeList.from_tuples(4, [(0, 1, 1.0)])
    b = EdgeList.from_tuples(4, [(2, 3, 2.0)])
    c = a.concat(b)
    assert c.as_tuples() == [(0, 1, 1.0), (2, 3, 2.0)]


def test_concat_rejects_mismatched_vertex_sets():
    a = EdgeList.from_tuples(4, [(0, 1)])
    b = EdgeList.from_tuples(5, [(0, 1)])
    with pytest.raises(ValueError):
        a.concat(b)


def test_deduplicate_keeps_first_occurrence():
    e = EdgeList.from_tuples(4, [(0, 1, 1.0), (0, 1, 9.0), (1, 2, 2.0)])
    d = e.deduplicate()
    assert d.as_tuples() == [(0, 1, 1.0), (1, 2, 2.0)]
    assert d.has_unique_pairs()


def test_without_self_loops():
    e = EdgeList.from_tuples(4, [(0, 0), (0, 1), (2, 2)])
    assert e.without_self_loops().as_tuples() == [(0, 1, 1.0)]


def test_sorted_by_src_orders_pairs():
    e = EdgeList.from_tuples(4, [(2, 1), (0, 3), (0, 1), (2, 0)])
    s = e.sorted_by_src()
    assert [(a, b) for a, b, _ in s.as_tuples()] == [
        (0, 1), (0, 3), (2, 0), (2, 1),
    ]
