"""Self-healing replication cluster: quorum acks, failure detection,
leader election, and the unattended chaos drill.

Every detector/election test runs on a :class:`ManualClock` with
hand-cranked ``tick()`` calls, so suspicion values, election rounds, and
CAS outcomes are deterministic; the chaos drill (subprocess primary +
SIGKILL + self-election) runs once end to end.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.resilience.campaign import CLUSTER_POINTS, run_trial
from repro.service import (
    ClusterNode,
    QueryService,
    ReplicaServer,
    ServiceConfig,
    WalPosition,
    current_fence_token,
    parse_ack_mode,
    run_chaos_kill_drill,
    safe_follower_id,
    try_claim_fence,
)
from repro.service.cluster import (
    Beacon,
    HeartbeatMonitor,
    ManualClock,
    write_beacon,
)
from repro.service.wal import write_follower_cursor

TINY = dict(scale="tiny", n_snapshots=4, workers=1)


def _primary(tmp_path, **over) -> QueryService:
    cfg = dict(TINY, wal_dir=str(tmp_path / "wal"))
    cfg.update(over)
    return QueryService(ServiceConfig(**cfg)).start()


def _replica(tmp_path, follower_id="r1", **kwargs) -> ReplicaServer:
    return ReplicaServer(
        tmp_path / "wal", ServiceConfig(**TINY),
        follower_id=follower_id, **kwargs
    )


# -- ack modes -------------------------------------------------------------


def test_parse_ack_mode_accepts_local_and_quorum_spellings():
    assert parse_ack_mode("local") == ("local", 0)
    assert parse_ack_mode("quorum:2") == ("quorum", 2)
    assert parse_ack_mode("quorum(3)") == ("quorum", 3)


@pytest.mark.parametrize("raw", ["", "quorum", "quorum:0", "majority", "2"])
def test_parse_ack_mode_rejects_garbage(raw):
    with pytest.raises(ValueError):
        parse_ack_mode(raw)


def test_quorum_ack_waits_for_follower_cursor(tmp_path):
    primary = _primary(tmp_path, ack_mode="quorum:1", quorum_timeout_s=30.0)
    replica = _replica(tmp_path, poll_interval_s=0.02)
    try:
        replica.start()  # background tailer writes acked-position cursors
        epoch, ack = primary.ingest_with_ack("PK", seed=1)
        assert epoch == 1
        assert ack["mode"] == "quorum" and ack["required"] == 1
        assert not ack["degraded"]
        assert "r1" in ack["acked_by"]
        assert primary.service_stats()["quorum_acks"] == 1
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


def test_quorum_ack_degrades_on_timeout_never_blocks_or_loses(tmp_path):
    primary = _primary(tmp_path, ack_mode="quorum:1", quorum_timeout_s=0.2)
    try:
        t0 = time.monotonic()
        epoch, ack = primary.ingest_with_ack("PK", seed=1)
        waited = time.monotonic() - t0
        # no follower ever acks: the ingest degrades to local durability
        # after the timeout instead of stalling forever or raising
        assert epoch == 1 and primary.epoch("PK") == 1
        assert ack["degraded"] and ack["acked_by"] == []
        assert 0.2 <= waited < 10.0
        assert primary.service_stats()["degraded_acks"] == 1
        assert primary.health()["ack_mode"] == "quorum:1"
    finally:
        primary.stop(drain=False)


# -- follower id validation (path traversal) -------------------------------


@pytest.mark.parametrize(
    "bad", ["../escape", "a/../b", "", "/abs", ".hidden", "x" * 65]
)
def test_follower_ids_with_traversal_or_junk_are_rejected(tmp_path, bad):
    with pytest.raises(ValueError):
        safe_follower_id(bad)
    with pytest.raises(ValueError):
        write_follower_cursor(tmp_path, bad, WalPosition(), {})
    with pytest.raises(ValueError):
        ReplicaServer(
            tmp_path / "wal", ServiceConfig(**TINY), follower_id=bad
        )


def test_follower_cursor_stays_inside_followers_dir(tmp_path):
    write_follower_cursor(tmp_path, "ok-1", WalPosition(), {"PK": 1})
    assert (tmp_path / "followers" / "ok-1.json").exists()


# -- fence CAS -------------------------------------------------------------


def test_fence_cas_exactly_one_racer_wins(tmp_path):
    pos = WalPosition(segment=1, offset=10, compactions=0)
    expected = current_fence_token(tmp_path)
    results = []
    barrier = threading.Barrier(2)

    def racer():
        barrier.wait()
        results.append(try_claim_fence(tmp_path, pos, expected))

    threads = [threading.Thread(target=racer) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wins = [r for r in results if r is not None]
    assert len(wins) == 1 and wins[0] == expected + 1
    assert current_fence_token(tmp_path) == expected + 1
    # a stale expectation can never claim
    assert try_claim_fence(tmp_path, pos, expected) is None
    # the next round's winner takes the next token
    assert try_claim_fence(tmp_path, pos, expected + 1) == expected + 2


# -- unattended election (manual clock, manual ticks) ----------------------


def _cluster_pair(tmp_path, clk, interval=0.1):
    """A live primary + two supervised followers on one manual clock."""
    primary = _primary(tmp_path)
    wal_dir = tmp_path / "wal"
    pnode = ClusterNode(
        wal_dir, "node-0", service=primary, cluster_size=3,
        heartbeat_interval_s=interval, clock=clk.now,
    )
    followers = []
    for i in (1, 2):
        replica = _replica(tmp_path, follower_id=f"node-{i}")
        node = ClusterNode(
            wal_dir, f"node-{i}", replica=replica, cluster_size=3,
            heartbeat_interval_s=interval, clock=clk.now,
        )
        followers.append(node)
    return primary, pnode, followers


def _teardown(primary, followers):
    for node in followers:
        node.stop()
        node.replica.stop(drain=False)
    primary.stop(drain=False)


def test_unattended_election_exactly_one_winner_and_retarget(tmp_path):
    clk = ManualClock()
    interval = 0.1
    primary, pnode, followers = _cluster_pair(tmp_path, clk, interval)
    try:
        primary.ingest("PK", seed=1)
        primary.ingest("PK", seed=2)
        for node in followers:
            node.replica.start(tail_thread=False)
        # priming: everyone learns everyone's cadence
        for _ in range(6):
            pnode.tick()
            for node in followers:
                node.tick()
                node.replica.poll_once()
            clk.advance(interval)
        # the primary dies (stops beating); nobody calls promote()
        actions: dict[str, list[str]] = {n.node_id: [] for n in followers}
        for _ in range(120):
            clk.advance(interval)
            for node in followers:
                actions[node.node_id].append(node.tick())
            if any(n.role == "primary" for n in followers):
                break
        winners = [n for n in followers if n.role == "primary"]
        assert len(winners) == 1, actions
        winner = winners[0]
        assert winner.elections == 1
        assert winner.service.epoch("PK") == 2  # caught up before claiming
        assert current_fence_token(tmp_path / "wal") == 2
        # the loser settles back to following the new primary
        loser = next(n for n in followers if n is not winner)
        for _ in range(12):
            clk.advance(interval)
            winner.tick()
            last = loser.tick()
        assert last == "follower" and loser.role == "follower"
        assert loser.primary_node_id == winner.node_id
        # and replicates the winner's post-election ingest
        winner.service.ingest("PK", seed=3)
        loser.replica.poll_once()
        assert loser.service.epoch("PK") == 3
    finally:
        _teardown(primary, followers)


def test_fsynced_but_unacked_epoch_survives_election_or_reports_degraded(
    tmp_path,
):
    """The kill window between WAL fsync and quorum ack: the epoch must
    either land on the new primary (it does — electors catch up to the
    fsynced tip before claiming) or be reported unacked.  Never both
    acked and lost."""
    primary = _primary(tmp_path, ack_mode="quorum:1", quorum_timeout_s=0.2)
    replica = _replica(tmp_path)
    try:
        replica.start(tail_thread=False)  # syncs, then stops polling
        # the follower is not polling, so the ack degrades: the client
        # is told the epoch is NOT quorum-durable
        epoch, ack = primary.ingest_with_ack("PK", seed=1)
        assert ack["degraded"]
        # primary dies right here; the follower elects itself
        primary.stop(drain=False)
        for _ in range(64):
            if replica.poll_once() == 0:
                break
        token = try_claim_fence(
            tmp_path / "wal", replica.position(),
            current_fence_token(tmp_path / "wal"),
        )
        assert token is not None
        replica.promote(claimed_token=token)
        # the fsynced epoch survived onto the new primary anyway
        assert replica.service.epoch("PK") == epoch == 1
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


def test_heartbeat_flapping_under_clock_jitter_never_confirms(tmp_path):
    """Jittered arrivals (0.5x-1.9x cadence) must not confirm a suspect;
    true silence must."""
    clk = ManualClock()
    monitor = HeartbeatMonitor(
        tmp_path, "observer", interval_s=0.1, clock=clk.now
    )

    def beat(seq):
        write_beacon(tmp_path, Beacon(
            node_id="peer", role="primary", fence_token=1,
            position=WalPosition(), epochs={}, seq=seq, sent_unix=0.0,
        ))

    # deterministic jitter pattern around the 0.1s cadence
    gaps = [0.05, 0.19, 0.07, 0.15, 0.11, 0.05, 0.18, 0.06, 0.14, 0.1] * 3
    seq = 0
    for gap in gaps:
        seq += 1
        beat(seq)
        monitor.observe()
        clk.advance(gap)
        monitor.observe()  # a mid-gap observation must not trip either
        assert not monitor.confirmed_suspect("peer"), (
            f"flapped at gap {gap}: phi {monitor.suspicion('peer'):.2f}"
        )
    # now the peer actually dies: suspicion must confirm and stick
    for _ in range(30):
        clk.advance(0.1)
        monitor.observe()
    assert monitor.confirmed_suspect("peer")
    assert monitor.suspects() == ["peer"]
    # hysteresis: one fresh beacon clears the verdict
    beat(seq + 1)
    monitor.observe()
    assert not monitor.confirmed_suspect("peer")


def test_zombie_primary_demotes_itself_on_newer_fence(tmp_path):
    clk = ManualClock()
    primary, pnode, followers = _cluster_pair(tmp_path, clk)
    try:
        primary.ingest("PK", seed=1)
        follower = followers[0]
        follower.replica.start(tail_thread=False)
        for _ in range(64):
            if follower.replica.poll_once() == 0:
                break
        # a rival claims the fence behind the primary's back (the
        # network-partition shape: the primary is alive but superseded)
        token = try_claim_fence(
            tmp_path / "wal", follower.replica.position(),
            current_fence_token(tmp_path / "wal"),
        )
        follower.replica.promote(claimed_token=token)
        assert pnode.tick() == "demoted"
        assert primary.role == "follower"
        assert pnode.demotions == 1
        with pytest.raises(Exception):
            primary.ingest("PK", seed=2)  # refuses as a follower now
    finally:
        _teardown(primary, followers)


# -- promote vs in-flight re-sync (regression) -----------------------------


def test_promote_waits_for_inflight_resync(tmp_path, monkeypatch):
    """promote() during a wholesale re-sync must serialize behind it —
    never fence and promote against a half-installed snapshot."""
    primary = _primary(tmp_path)
    replica = _replica(tmp_path)
    try:
        primary.ingest("PK", seed=1)
        replica.start(tail_thread=False)
        primary.ingest("PK", seed=2)

        entered = threading.Event()
        release = threading.Event()
        real_install = replica.service._install_recovery

        def slow_install(recovery):
            entered.set()
            assert release.wait(timeout=30)
            return real_install(recovery)

        monkeypatch.setattr(
            replica.service, "_install_recovery", slow_install
        )
        resync = threading.Thread(target=replica._resync, daemon=True)
        resync.start()
        assert entered.wait(timeout=30)
        assert replica.resync_in_progress

        promoted: list[int] = []
        promote = threading.Thread(
            target=lambda: promoted.append(replica.promote()), daemon=True
        )
        promote.start()
        promote.join(timeout=0.5)
        # the promote is parked behind the re-sync, not interleaved
        assert promote.is_alive() and not promoted
        release.set()
        resync.join(timeout=30)
        promote.join(timeout=30)
        assert not promote.is_alive()
        assert promoted and promoted[0] >= 2
        assert not replica.resync_in_progress
        assert replica.service.role == "primary"
        assert replica.service.epoch("PK") == 2  # full chain, no half state
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


# -- fault campaign --------------------------------------------------------


@pytest.mark.parametrize(
    "point,skip",
    [("cluster.heartbeat-drop", 1), ("cluster.split-fence", 0)],
)
def test_fault_campaign_cluster_trials_recover(point, skip):
    assert point in CLUSTER_POINTS
    outcome = run_trial(None, None, point, seed=0, skip=skip)
    assert outcome.verdict == "recovered", outcome.detail


# -- the unattended chaos drill -------------------------------------------


def test_chaos_kill_drill_unattended_election_zero_loss(tmp_path):
    report = run_chaos_kill_drill(
        tmp_path / "wal", cluster=3, kill_at_epoch=2,
        algos=["bfs"], load_duration_s=8.0,
    )
    assert report.ok, report.format_table()
    assert report.lost_quorum_acked == 0
    assert report.degraded_acks == 0
    assert report.elected_node in ("node-1", "node-2")
    assert report.new_fence_token > report.old_fence_token
    assert report.failovers >= 1 and report.post_kill_ingests >= 1
    assert report.survivor_primary_view == report.elected_node
    assert report.parity == {"bfs": True}
    assert report.orphan_segments == []
    doc = json.loads(report.to_json())
    assert doc["drill"] == "chaos-kill"
    assert doc["results"]["ok"]
    table = report.format_table()
    assert "PASS" in table and "unattended election" in table


# -- CLI -------------------------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "--cluster", "1"],
        ["serve", "--cluster", "3"],  # primary without --wal-dir
        ["serve", "--cluster", "2", "--shards", "2", "--wal-dir", "w"],
        ["serve", "--follow", "w", "--follower-id", "../evil"],
        ["serve-bench", "--ack-mode", "bogus"],
        ["serve-bench", "--ack-mode", "quorum:1"],  # no replication dir
        ["serve-bench", "--quorum-timeout", "0"],
        ["serve-bench", "--chaos-kill", "-1"],
        ["serve-bench", "--chaos-kill", "1", "--crash-at-epoch", "1"],
    ],
)
def test_cli_cluster_bad_arguments_exit_2(argv, capsys):
    assert main(argv) == 2
    assert capsys.readouterr().err.strip()
