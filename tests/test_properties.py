"""Property-based tests (hypothesis) for the core invariants.

Random graphs, random batch schedules, random windows — the invariants
DESIGN.md commits to:

* every workflow equals from-scratch evaluation on every snapshot;
* monotone convergence (values only ever improve toward the fixpoint);
* CommonGraph set identities; plan/batch structural invariants;
* queue coalescing never loses the best delta.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.accel.event import Event
from repro.accel.queue import EventQueue
from repro.algorithms import all_algorithms, get_algorithm
from repro.engines import MultiVersionEngine, PlanExecutor
from repro.engines.validation import validate_workflow
from repro.evolving import synthesize_scenario
from repro.evolving.common_graph import range_common_mask
from repro.evolving.snapshots import batch_sizes
from repro.evolving.window import extract_window
from repro.graph.csr import CSRGraph, gather_out_edges
from repro.graph.edges import EdgeList
from repro.graph.generators import rmat_edges, uniform_edges
from repro.schedule import WORKFLOWS, plan_for

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALGO_NAMES = [a.name for a in all_algorithms()]


@st.composite
def scenarios(draw):
    seed = draw(st.integers(0, 10_000))
    n_vertices = draw(st.sampled_from([32, 48, 64, 96]))
    n_edges = n_vertices * draw(st.sampled_from([4, 6, 8]))
    n_snapshots = draw(st.integers(2, 7))
    batch_pct = draw(st.sampled_from([0.02, 0.04, 0.08]))
    imbalance = draw(st.sampled_from([1.0, 2.0, 4.0]))
    gen = rmat_edges if draw(st.booleans()) else uniform_edges
    pool = gen(n_vertices, n_edges, seed=seed)
    return synthesize_scenario(
        pool,
        n_snapshots=n_snapshots,
        batch_pct=batch_pct,
        imbalance=imbalance,
        seed=seed + 1,
    )


@st.composite
def edge_lists(draw):
    n = draw(st.integers(2, 64))
    m = draw(st.integers(0, min(200, n * (n - 1))))
    if m == 0:
        return EdgeList.from_tuples(n, [])
    return uniform_edges(n, m, seed=draw(st.integers(0, 1000)))


# -- workflow correctness ------------------------------------------------------


@SETTINGS
@given(scenario=scenarios(), algo_name=st.sampled_from(ALGO_NAMES),
       workflow=st.sampled_from(sorted(WORKFLOWS)))
def test_any_workflow_any_algorithm_matches_ground_truth(
    scenario, algo_name, workflow
):
    algo = get_algorithm(algo_name)
    result = PlanExecutor(scenario, algo).run(
        plan_for(workflow, scenario.unified)
    )
    validate_workflow(scenario, algo, result)


@SETTINGS
@given(scenario=scenarios(), algo_name=st.sampled_from(ALGO_NAMES))
def test_monotone_convergence(scenario, algo_name):
    """Along any addition-only schedule, values never get worse."""
    algo = get_algorithm(algo_name)
    u = scenario.unified
    engine = MultiVersionEngine(algo, u)
    presence = u.common_mask.copy()
    values = engine.evaluate_full(presence, scenario.source)
    missing = np.flatnonzero(~presence & u.presence_mask(u.n_snapshots - 1))
    for chunk in np.array_split(missing, 3):
        if chunk.size == 0:
            continue
        before = values.copy()
        presence = presence.copy()
        presence[chunk] = True
        engine.apply_additions(values[None, :], chunk, presence[None, :])
        assert not np.any(algo.better(before, values))


# -- structural invariants --------------------------------------------------------


@SETTINGS
@given(scenario=scenarios())
def test_common_graph_identities(scenario):
    u = scenario.unified
    inter = np.ones(u.n_union_edges, dtype=bool)
    union = np.zeros(u.n_union_edges, dtype=bool)
    for k in range(u.n_snapshots):
        mask = u.presence_mask(k)
        inter &= mask
        union |= mask
    assert np.array_equal(inter, u.common_mask)
    assert bool(union.all())


@SETTINGS
@given(scenario=scenarios())
def test_batches_partition_tagged_edges(scenario):
    u = scenario.unified
    seen = np.zeros(u.n_union_edges, dtype=int)
    for b in u.addition_batches() + u.deletion_batches():
        seen[b.edge_idx] += 1
    assert np.all(seen <= 1)
    assert np.array_equal(seen == 0, u.common_mask)


@SETTINGS
@given(scenario=scenarios(), data=st.data())
def test_window_extraction_preserves_snapshots(scenario, data):
    u = scenario.unified
    lo = data.draw(st.integers(0, u.n_snapshots - 1))
    hi = data.draw(st.integers(lo, u.n_snapshots - 1))
    w = extract_window(u, lo, hi)
    for k in range(lo, hi + 1):
        a = u.snapshot_graph(k)
        b = w.snapshot_graph(k - lo)
        assert a.n_edges == b.n_edges
        pairs_a = set(zip(a.src_of_edge.tolist(), a.dst.tolist()))
        pairs_b = set(zip(b.src_of_edge.tolist(), b.dst.tolist()))
        assert pairs_a == pairs_b


@SETTINGS
@given(scenario=scenarios(), data=st.data())
def test_range_common_monotone(scenario, data):
    """Narrowing a snapshot range only adds common edges."""
    u = scenario.unified
    lo = data.draw(st.integers(0, u.n_snapshots - 1))
    hi = data.draw(st.integers(lo, u.n_snapshots - 1))
    outer = range_common_mask(u, lo, hi)
    lo2 = data.draw(st.integers(lo, hi))
    hi2 = data.draw(st.integers(lo2, hi))
    inner = range_common_mask(u, lo2, hi2)
    assert np.all(outer <= inner)


@SETTINGS
@given(edges=edge_lists())
def test_csr_roundtrip(edges):
    dedup = edges.deduplicate().without_self_loops()
    graph = CSRGraph.from_edges(dedup)
    back = graph.to_edge_list()
    assert sorted(back.as_tuples()) == sorted(dedup.as_tuples())
    # transpose twice is identity on the edge set
    twice = graph.reverse().reverse()
    assert sorted(twice.to_edge_list().as_tuples()) == sorted(
        dedup.as_tuples()
    )


@SETTINGS
@given(edges=edge_lists(), data=st.data())
def test_gather_out_edges_property(edges, data):
    dedup = edges.deduplicate().without_self_loops()
    graph = CSRGraph.from_edges(dedup)
    k = data.draw(st.integers(0, graph.n_vertices))
    frontier = np.unique(
        data.draw(
            st.lists(
                st.integers(0, graph.n_vertices - 1),
                min_size=0,
                max_size=k,
            )
        )
    ).astype(np.int64)
    idx, src = gather_out_edges(graph.indptr, frontier)
    assert idx.shape == src.shape
    assert np.all(graph.src_of_edge[idx] == src)
    expected_total = int(
        sum(graph.out_degree(int(u)) for u in frontier)
    )
    assert idx.size == expected_total


@SETTINGS
@given(
    total=st.integers(0, 5000),
    n=st.integers(1, 40),
    imbalance=st.floats(1.0, 8.0),
    seed=st.integers(0, 100),
)
def test_batch_sizes_always_sum(total, n, imbalance, seed):
    rng = np.random.default_rng(seed)
    sizes = batch_sizes(total, n, imbalance, rng)
    assert sizes.shape == (n,)
    assert int(sizes.sum()) == total
    assert np.all(sizes >= 0)


# -- queue coalescing ----------------------------------------------------------


@SETTINGS
@given(
    payloads=st.lists(
        st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=30
    ),
    algo_name=st.sampled_from(ALGO_NAMES),
    vertex=st.integers(0, 63),
)
def test_queue_keeps_best_payload(payloads, algo_name, vertex):
    algo = get_algorithm(algo_name)
    q = EventQueue(algo, n_bins=4)
    for p in payloads:
        q.insert(Event(vertex, p))
    [event] = q.pop_round()
    best = min(payloads) if algo.minimize else max(payloads)
    assert event.payload == best


@SETTINGS
@given(data=st.data())
def test_window_split_greedy_is_maximal(data):
    """Each produced window (except the last) cannot absorb the next
    transition — the greedy split is locally maximal, hence minimal in
    window count for this interval constraint."""
    from repro.evolving.builder import EdgeEvent
    from repro.evolving.windows_split import change_steps, split_boundaries

    n = 12
    n_events = data.draw(st.integers(1, 40))
    events = [
        EdgeEvent(
            time=data.draw(st.floats(0.0, 10.0, allow_nan=False)),
            src=data.draw(st.integers(0, n - 1)),
            dst=data.draw(st.integers(0, n - 1)),
            add=data.draw(st.booleans()),
        )
        for __ in range(n_events)
    ]
    boundaries = np.linspace(0.0, 10.0, 8)[1:]
    initially = {
        data.draw(st.integers(0, n * n - 1)) for __ in range(5)
    }
    windows = split_boundaries(events, boundaries, n, initially)
    flips = change_steps(events, boundaries, n, initially)

    # validity: at most one flip per edge inside each window
    for key, steps in flips.items():
        for lo, hi in windows:
            assert sum(1 for j in steps if lo <= j < hi) <= 1

    # maximality: extending any non-final window by one transition breaks it
    for (lo, hi) in windows[:-1]:
        extended_bad = any(
            sum(1 for j in steps if lo <= j <= hi) > 1
            for steps in flips.values()
        )
        assert extended_bad, (lo, hi)


@SETTINGS
@given(data=st.data())
def test_window_server_random_slides_match_scratch(data):
    """Random slide sequences keep every snapshot at ground truth."""
    from repro.core import WindowServer
    from repro.engines.validation import evaluate_reference
    from repro.graph.edges import edge_keys as ek

    seed = data.draw(st.integers(0, 500))
    pool = rmat_edges(40, 280, seed=seed)
    scenario = synthesize_scenario(
        pool, n_snapshots=4, batch_pct=0.05, seed=seed + 1
    )
    algo = get_algorithm(data.draw(st.sampled_from(ALGO_NAMES)))
    server = WindowServer(scenario, algo)

    for __ in range(data.draw(st.integers(1, 3))):
        u = server.scenario.unified
        n = u.n_vertices
        taken = set(ek(u.graph.src_of_edge, u.graph.dst, n).tolist())
        adds = []
        for ___ in range(data.draw(st.integers(0, 4))):
            s = data.draw(st.integers(0, n - 1))
            d = data.draw(st.integers(0, n - 1))
            if s == d or s * n + d in taken:
                continue
            taken.add(s * n + d)
            adds.append((s, d, float(data.draw(st.integers(1, 8)))))
        deletable = np.flatnonzero(
            u.presence_mask(u.n_snapshots - 1) & (u.add_step < 1)
        )
        n_dels = min(data.draw(st.integers(0, 4)), deletable.size)
        dels = [
            (int(u.graph.src_of_edge[e]), int(u.graph.dst[e]))
            for e in deletable[:n_dels]
        ]
        from repro.graph.edges import EdgeList

        server.advance(EdgeList.from_tuples(n, adds), dels)
        for k in range(server.n_snapshots):
            expected = evaluate_reference(server.scenario, algo, k)
            assert np.allclose(
                server.values(k), expected, equal_nan=True
            ), k


@SETTINGS
@given(data=st.data())
def test_event_level_equals_round_engine_property(data):
    """The exact event-level datapath and the vectorized round engine
    compute identical fixpoints on random graphs and batch orders."""
    from repro.accel.eventsim import EventLevelSimulator

    seed = data.draw(st.integers(0, 1000))
    n = data.draw(st.sampled_from([16, 24, 32]))
    m = n * data.draw(st.sampled_from([3, 5]))
    algo = get_algorithm(data.draw(st.sampled_from(ALGO_NAMES)))
    order = data.draw(st.sampled_from(["fifo", "best-first"]))
    edges = uniform_edges(n, m, seed=seed)
    graph = CSRGraph.from_edges(edges)

    import numpy as _np

    none = _np.full(graph.n_edges, -1, dtype=_np.int32)
    from repro.evolving.unified_csr import UnifiedCSR

    u = UnifiedCSR(graph, none, none.copy(), 1)
    rng = _np.random.default_rng(seed)
    base = _np.ones(graph.n_edges, dtype=bool)
    missing = rng.choice(
        graph.n_edges, size=graph.n_edges // 4, replace=False
    )
    base[missing] = False

    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, base.copy())
    sim.set_source(0)
    sim.run(order=order)
    sim.seed_batch(missing, versions=[0])
    values = sim.run(order=order)

    engine = MultiVersionEngine(algo, u)
    expected = engine.evaluate_full(_np.ones(graph.n_edges, dtype=bool), 0)
    assert _np.allclose(values[0], expected, equal_nan=True)
