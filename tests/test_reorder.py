"""Tests for vertex reordering and its effect on partition locality."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList
from repro.graph.generators import grid_edges, rmat_edges
from repro.graph.partition import VertexPartitioner
from repro.graph.reorder import apply_order, bfs_order, degree_order


def test_bfs_order_is_permutation():
    g = CSRGraph.from_edges(rmat_edges(64, 400, seed=5))
    order = bfs_order(g)
    assert np.array_equal(np.sort(order), np.arange(64))


def test_bfs_order_covers_disconnected_components():
    g = CSRGraph.from_tuples(5, [(0, 1), (3, 4)])  # vertex 2 isolated
    order = bfs_order(g)
    assert np.array_equal(np.sort(order), np.arange(5))


def test_bfs_order_respects_start():
    g = CSRGraph.from_tuples(4, [(0, 1), (1, 2), (2, 3)])
    order = bfs_order(g, start=2)
    assert order[0] == 2


def test_degree_order_hubs_first():
    g = CSRGraph.from_edges(rmat_edges(64, 512, seed=1))
    order = degree_order(g)
    degrees = np.diff(g.indptr)
    assert degrees[order[0]] == degrees.max()
    reordered = degrees[order]
    assert np.all(reordered[:-1] >= reordered[1:])


def test_apply_order_preserves_structure():
    edges = rmat_edges(32, 160, seed=2)
    g = CSRGraph.from_edges(edges)
    order = bfs_order(g)
    renum = apply_order(edges, order)
    assert len(renum) == len(edges)
    # degree multiset is invariant under renumbering
    a = np.sort(np.bincount(edges.src, minlength=32))
    b = np.sort(np.bincount(renum.src, minlength=32))
    assert np.array_equal(a, b)


def test_apply_order_validates():
    edges = rmat_edges(8, 20, seed=0)
    with pytest.raises(ValueError):
        apply_order(edges, np.arange(4))
    with pytest.raises(ValueError):
        apply_order(edges, np.zeros(8, dtype=np.int64))


def test_bfs_order_reduces_cross_partition_edges():
    """On a structured graph, BFS renumbering after a random shuffle
    restores partition locality."""
    rng = np.random.default_rng(3)
    edges = grid_edges(16, 16, seed=1)
    n = edges.n_vertices
    shuffle = rng.permutation(n)
    scrambled = apply_order(edges, shuffle)

    def cross(e: EdgeList) -> float:
        g = CSRGraph.from_edges(e)
        p = VertexPartitioner(g.indptr, 8)
        return p.cross_fraction(g.src_of_edge, g.dst)

    reordered = apply_order(
        scrambled, bfs_order(CSRGraph.from_edges(scrambled))
    )
    assert cross(reordered) < cross(scrambled)
