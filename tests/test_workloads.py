"""Tests for the Table 2 dataset proxies."""

import pytest

from repro.workloads import DATASETS, SCALES, load_pool, load_scenario


def test_all_six_paper_graphs_present():
    assert set(DATASETS) == {"PK", "LJ", "OR", "DL", "UK", "Wen"}


def test_paper_sizes_recorded():
    assert DATASETS["PK"].paper_edges == 30_000_000
    assert DATASETS["Wen"].paper_vertices == 13_000_000
    assert DATASETS["UK"].paper_edges == 260_000_000


def test_proxy_preserves_density_ordering():
    """Orkut is denser than DBpedia at any scale, as in the paper."""
    okr = load_pool("OR", "tiny")
    dbp = load_pool("DL", "tiny")
    assert len(okr) / okr.n_vertices > len(dbp) / dbp.n_vertices


def test_scales_are_ordered():
    assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"]


def test_load_by_long_name():
    a = load_pool("wikipedia-en", "tiny")
    b = load_pool("Wen", "tiny")
    assert a.as_tuples() == b.as_tuples()


def test_unknown_dataset():
    with pytest.raises(KeyError):
        load_pool("twitter")


def test_numeric_scale():
    pool = load_pool("PK", 1 / 10_000)
    assert len(pool) == 3_000


def test_scenario_defaults_match_paper():
    s = load_scenario("PK", "tiny")
    assert s.n_snapshots == 16
    assert s.metadata["batch_pct"] == 0.01
    assert s.metadata["dataset"] == "PK"


def test_capacity_scale_metadata():
    s = load_scenario("LJ", "tiny")
    expected = s.n_vertices / DATASETS["LJ"].paper_vertices
    assert s.metadata["capacity_scale"] == pytest.approx(expected)


def test_scenario_determinism():
    a = load_scenario("OR", "tiny", seed=5)
    b = load_scenario("OR", "tiny", seed=5)
    assert a.unified.graph.dst.tolist() == b.unified.graph.dst.tolist()
    assert a.unified.add_step.tolist() == b.unified.add_step.tolist()


def test_scenario_kwargs_forwarded():
    s = load_scenario("PK", "tiny", n_snapshots=4, batch_pct=0.02)
    assert s.n_snapshots == 4
    assert s.metadata["batch_pct"] == 0.02


def test_minimum_proxy_sizes():
    spec = DATASETS["PK"]
    n_v, n_e = spec.proxy_sizes(1e-9)
    assert n_v >= 64 and n_e >= 256


def test_karate_club_structure():
    from repro.workloads import karate_club_edges

    edges = karate_club_edges()
    assert edges.n_vertices == 34
    assert len(edges) == 2 * 78  # both directions of 78 friendships
    assert edges.has_unique_pairs()
    # instructor (0) and administrator (33) are the hubs
    import numpy as np

    deg = np.bincount(edges.src, minlength=34)
    assert set(np.argsort(-deg)[:2].tolist()) == {0, 33}


def test_karate_club_is_one_component():
    import numpy as np

    from repro.algorithms import MinLabel
    from repro.engines import MultiVersionEngine
    from repro.evolving.unified_csr import UnifiedCSR
    from repro.graph.csr import CSRGraph
    from repro.workloads import karate_club_edges

    g = CSRGraph.from_edges(karate_club_edges())
    none = np.full(g.n_edges, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    vals = MultiVersionEngine(MinLabel(), u).evaluate_full(
        np.ones(g.n_edges, dtype=bool), 0
    )
    assert np.all(vals == 0.0)  # the club is connected


def test_karate_club_scenario_runs_workflows():
    from repro.algorithms import get_algorithm
    from repro.engines import PlanExecutor
    from repro.engines.validation import validate_workflow
    from repro.schedule import boe_plan
    from repro.workloads import karate_club_scenario

    scenario = karate_club_scenario()
    algo = get_algorithm("bfs")
    result = PlanExecutor(scenario, algo).run(boe_plan(scenario.unified))
    validate_workflow(scenario, algo, result)
