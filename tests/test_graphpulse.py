"""Tests for the GraphPulse static-accelerator mode."""

import pytest

from repro.accel.graphpulse import GraphPulseSimulator, static_scenario
from repro.algorithms import get_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.workloads import load_scenario


@pytest.fixture(scope="module")
def graph():
    return CSRGraph.from_edges(rmat_edges(128, 1024, seed=3))


def test_static_scenario_wraps_graph(graph):
    s = static_scenario(graph, source=2)
    assert s.n_snapshots == 1
    assert s.source == 2
    assert s.snapshot_graph(0).n_edges == graph.n_edges
    assert bool(s.unified.common_mask.all())


def test_static_eval_validates(graph):
    sim = GraphPulseSimulator()
    report = sim.run(static_scenario(graph), get_algorithm("sssp"), validate=True)
    assert report.system == "graphpulse"
    assert report.cycles > 0
    assert report.counters.rounds > 1


def test_static_eval_on_specific_snapshot():
    scenario = load_scenario("PK", "tiny", n_snapshots=4)
    sim = GraphPulseSimulator()
    r0 = sim.run(scenario, get_algorithm("bfs"), snapshot=0, validate=True)
    r3 = sim.run(scenario, get_algorithm("bfs"), snapshot=3, validate=True)
    assert r0.cycles > 0 and r3.cycles > 0


def test_static_events_scale_with_graph():
    small = static_scenario(CSRGraph.from_edges(rmat_edges(64, 256, seed=1)))
    big = static_scenario(CSRGraph.from_edges(rmat_edges(64, 512, seed=1)))
    sim = GraphPulseSimulator()
    algo = get_algorithm("sssp")
    a = sim.run(small, algo)
    b = sim.run(big, algo)
    assert b.counters.edges_fetched > a.counters.edges_fetched


def test_round_series_is_fig10_shaped(graph):
    sim = GraphPulseSimulator()
    report = sim.run(static_scenario(graph), get_algorithm("sswp"))
    [series] = report.round_series
    assert max(series) > series[-1]
