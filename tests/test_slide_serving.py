"""Live sliding-window serving (`--slide-every`): slide parity under
ingest, cache rebasing across slides, WAL slide-record recovery, the
quorum-poll backoff, and the lock-free seeded-ingest race.

The parity tests are differential: a service configured to slide must
answer every query with the same summaries as a service that replays the
identical delta log through the scratch path — the bit-identical
contract the worker-side window servers rely on.
"""

from __future__ import annotations

import threading
import time
import types

import pytest

from repro.service import (
    QueryRequest,
    QueryService,
    ResultCache,
    ServiceConfig,
)
from repro.service.wal import write_follower_cursor

TINY = dict(scale="tiny", n_snapshots=4, workers=1)
ALGOS = ["bfs", "sssp", "sswp", "ssnp", "viterbi"]


def _config(**kw) -> ServiceConfig:
    merged = {**TINY, "coalesce_ms": 2.0, **kw}
    return ServiceConfig(**merged)


def _checksums(response):
    assert response.ok, response.error
    return [(s.snapshot, s.reached, s.checksum) for s in response.summaries]


# -- cache rebasing --------------------------------------------------------


def test_rebase_graph_moves_surviving_window_entries():
    from repro.service.request import SnapshotSummary

    cache = ResultCache(maxsize=8)
    movable = QueryRequest("PK", "sssp", 1, window=(1, 3))
    edge = QueryRequest("PK", "sssp", 1, window=(0, 2))
    full = QueryRequest("PK", "sssp", 1)
    other = QueryRequest("LJ", "sssp", 1, window=(1, 3))
    rows = [SnapshotSummary(0, 3, 1.0)]
    for req in (movable, edge, full, other):
        cache.put(req, 4, rows)
    rebased, dropped = cache.rebase_graph("PK", 5)
    # the (1,3) entry shifts to (0,2)@5; the lo=0 window and the full
    # query lose their oldest snapshot and must be dropped
    assert (rebased, dropped) == (1, 2)
    assert cache.get(QueryRequest("PK", "sssp", 1, window=(0, 2)), 5) == rows
    assert cache.get(movable, 4) is None
    assert cache.get(edge, 4) is None and cache.get(full, 4) is None
    # other graphs are untouched
    assert cache.get(other, 4) == rows


def test_window_query_cache_survives_a_slide_end_to_end():
    service = QueryService(_config(window_slide_every=2)).start()
    try:
        service.ingest_with_ack("PK", seed=1)
        first = service.submit(
            QueryRequest("PK", "sssp", 1, window=(1, 3))
        ).wait(timeout=120)
        assert first.ok
        service.ingest_with_ack("PK", seed=2)
        hit = service.submit(
            QueryRequest("PK", "sssp", 1, window=(0, 2))
        ).wait(timeout=120)
        assert hit.status == "cached"
        assert service.service_stats()["cache_rebased"] >= 1
        # the rebased entry is *correct*: recompute without the cache
        service.clear_caches()
        fresh = service.submit(
            QueryRequest("PK", "sssp", 1, window=(0, 2))
        ).wait(timeout=120)
        assert _checksums(hit) == _checksums(fresh)
    finally:
        service.stop(drain=False)


# -- slide parity under live ingest ---------------------------------------


def test_sliding_service_matches_scratch_service_all_algos():
    """The tentpole contract: with ``--slide-every`` on, every algorithm
    answers bit-identically to a no-sliding service that replayed the
    same delta log, including incremental advances from warm per-worker
    window servers."""
    slid = QueryService(_config(window_slide_every=2)).start()
    plain = QueryService(_config()).start()
    try:
        slid.ingest_with_ack("PK", seed=1)
        # warm the per-worker window servers at epoch 1 so the queries
        # after the next ingests take the incremental advance path
        for algo in ALGOS:
            assert slid.submit(QueryRequest("PK", algo, 1)).wait(120).ok
        slid.ingest_with_ack("PK", seed=2)
        slid.ingest_with_ack("PK", seed=3)
        for delta in slid.graph_deltas("PK"):
            plain.ingest_with_ack("PK", delta=delta)
        assert plain.epoch("PK") == slid.epoch("PK") == 3
        for algo in ALGOS:
            a = slid.submit(QueryRequest("PK", algo, 1)).wait(timeout=120)
            b = plain.submit(QueryRequest("PK", algo, 1)).wait(timeout=120)
            assert _checksums(a) == _checksums(b), algo
        stats = slid.service_stats()
        assert stats["errored"] == 0
        assert stats["slide_advances"] > 0  # warm servers really advanced
        assert 0.0 < slid.stable_vertex_rate() <= 1.0
        health = slid.health()["sliding"]
        assert health["enabled"] and health["slide_every"] == 2
        assert health["slides"]["PK"] == 1  # epoch 2 was the checkpoint
        assert health["stable_vertex_rate"] == pytest.approx(
            slid.stable_vertex_rate(), abs=1e-6
        )
    finally:
        slid.stop(drain=False)
        plain.stop(drain=False)


# -- WAL slide records -----------------------------------------------------


def test_slide_records_recover_counters_and_are_not_unknown(tmp_path, caplog):
    wal_dir = str(tmp_path / "wal")
    service = QueryService(
        _config(window_slide_every=2, wal_dir=wal_dir)
    ).start()
    try:
        for seed in (1, 2, 3, 4):
            service.ingest_with_ack("PK", seed=seed)
        wires = [d.to_wire() for d in service.graph_deltas("PK")]
        assert service.health()["sliding"]["slides"] == {"PK": 2}
    finally:
        service.stop(drain=False)

    with caplog.at_level("WARNING", logger="repro.service.core"):
        revived = QueryService(
            _config(window_slide_every=2, wal_dir=wal_dir)
        ).start()
        try:
            assert revived.epoch("PK") == 4
            assert [
                d.to_wire() for d in revived.graph_deltas("PK")
            ] == wires
            # the slide counters survive the restart via the slide
            # records / compaction snapshot, not by re-running slides
            assert revived.health()["sliding"]["slides"] == {"PK": 2}
        finally:
            revived.stop(drain=False)
    assert "unknown record op" not in caplog.text


# -- quorum ack polling ----------------------------------------------------


def test_slow_follower_ack_is_not_degraded(tmp_path):
    """A follower that needs ~100 ms to ack must still produce a clean
    (non-degraded) quorum ack — the backoff waits, it does not give up."""
    wal_dir = tmp_path / "wal"
    primary = QueryService(
        _config(ack_mode="quorum:1", quorum_timeout_s=30.0,
                wal_dir=str(wal_dir))
    ).start()
    try:
        def late_ack():
            time.sleep(0.12)
            write_follower_cursor(
                wal_dir, "f1", primary.wal.position(), {"PK": 1}
            )

        t = threading.Thread(target=late_ack)
        t.start()
        epoch, ack = primary.ingest_with_ack("PK", seed=1)
        t.join()
        assert epoch == 1
        assert not ack["degraded"] and ack["acked_by"] == ["f1"]
        assert ack["wait_s"] >= 0.1
    finally:
        primary.stop(drain=False)


def test_quorum_poll_backs_off_exponentially(monkeypatch):
    """Unit test of `_await_quorum` on a fake clock: the poll pause
    starts at 1 ms, grows geometrically, caps at 50 ms, and therefore
    issues far fewer polls than the old fixed 3 ms spin."""
    from repro.service import core as score

    service = QueryService(
        _config(ack_mode="quorum:1", quorum_timeout_s=0.5)
    )
    # an unstarted service has no WAL; stub one whose dir has no
    # follower cursors so every poll comes up empty until the deadline
    service.wal = types.SimpleNamespace(wal_dir="/nonexistent-wal-dir")
    clock = {"t": 0.0}
    sleeps: list[float] = []

    def fake_sleep(s):
        sleeps.append(s)
        clock["t"] += max(s, 1e-6)

    monkeypatch.setattr(score.time, "monotonic", lambda: clock["t"])
    monkeypatch.setattr(score.time, "sleep", fake_sleep)
    ack = service._await_quorum("PK", 1)
    assert ack["degraded"] and ack["acked_by"] == []
    assert sleeps[0] == pytest.approx(score._QUORUM_POLL_MIN_S)
    assert max(sleeps) <= score._QUORUM_POLL_MAX_S + 1e-12
    # monotone non-decreasing growth (the final sleep may be clamped to
    # the remaining deadline)
    body = sleeps[:-1]
    assert all(b >= a for a, b in zip(body, body[1:]))
    assert sleeps.count(score._QUORUM_POLL_MAX_S) >= 2  # reached the cap
    # the old behavior was ~166 fixed 3 ms polls over a 0.5 s timeout
    assert len(sleeps) <= 20


# -- optimistic seeded-ingest concurrency ----------------------------------


def test_concurrent_seeded_ingests_all_land_validly():
    """Seeded delta synthesis runs outside `_graphs_lock`; two racing
    ingest threads must both land (the loser resynthesizes against the
    new epoch) and the combined log must replay cleanly."""
    service = QueryService(_config()).start()
    try:
        errors: list[Exception] = []
        barrier = threading.Barrier(2)

        def ingest(base_seed):
            try:
                barrier.wait()
                for i in range(3):
                    service.ingest_with_ack("PK", seed=base_seed + i)
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=ingest, args=(s,)) for s in (10, 20)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert service.epoch("PK") == 6
        assert len(service.graph_deltas("PK")) == 6
        # the landed log is consistent: a query replays all six deltas
        # in the worker and must succeed, not trip delta validation
        resp = service.submit(QueryRequest("PK", "sssp", 1)).wait(120)
        assert resp.ok
        assert service.service_stats()["errored"] == 0
    finally:
        service.stop(drain=False)
