"""Tests for the row-buffer-aware DRAM model."""

from dataclasses import replace

import numpy as np
import pytest

from repro.accel import MegaSimulator, mega_config
from repro.accel.dram import RowBufferDram
from repro.algorithms import get_algorithm
from repro.workloads import load_scenario


def model(**kw):
    return RowBufferDram(mega_config(capacity_scale=1.0), **kw)


def test_sequential_blocks_hit_row_buffer():
    m = model()
    # 32 blocks per 2 KiB row: the first access opens the row, rest hit
    m.access_round(np.arange(32))
    assert m.row_misses == 1
    assert m.row_hits == 31


def test_scattered_blocks_miss():
    m = model()
    stride = m.blocks_per_row * m.n_banks  # unique row per access, same bank
    m.access_round(np.arange(8) * stride)
    assert m.row_hits == 0
    assert m.row_misses == 8


def test_sequential_cheaper_than_scattered():
    seq = model()
    scat = model()
    a = seq.access_round(np.arange(64))
    stride = scat.blocks_per_row * scat.n_banks
    b = scat.access_round(np.arange(64) * stride)
    assert a < b


def test_open_rows_persist_across_rounds():
    m = model()
    m.access_round(np.array([0]))
    cost = m.access_round(np.array([1]))  # same row, still open
    assert m.row_hits == 1
    assert cost == pytest.approx(m.t_burst / m.config.dram_channels)


def test_empty_round_free():
    m = model()
    assert m.access_round(np.empty(0, dtype=np.int64)) == 0.0
    assert m.row_hit_rate == 0.0


def test_hit_rate_tracking():
    m = model()
    m.access_round(np.arange(16))
    assert 0.9 <= m.row_hit_rate < 1.0


def test_detailed_dram_integrates_with_simulator():
    scenario = load_scenario("PK", "tiny", n_snapshots=6)
    algo = get_algorithm("sssp")
    plain = MegaSimulator("boe", config=mega_config()).run(scenario, algo)
    detailed = MegaSimulator(
        "boe", config=replace(mega_config(), detailed_dram=True)
    ).run(scenario, algo)
    # the detailed model only ever adds service time for poor locality
    assert detailed.update_cycles >= plain.update_cycles * 0.999
    # and values/workflow behaviour are unchanged
    assert detailed.counters.events_generated == plain.counters.events_generated
