"""Tests for graph I/O and the timestamped-event scenario builder."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import validate_workflow
from repro.evolving.builder import EdgeEvent, EvolvingGraphBuilder
from repro.graph.edges import EdgeList
from repro.graph.generators import rmat_edges
from repro.graph.io import (
    load_scenario_file,
    read_edge_list,
    save_scenario,
    write_edge_list,
)
from repro.schedule import boe_plan
from repro.workloads import load_scenario


# -- text edge lists -----------------------------------------------------------


def test_edge_list_roundtrip(tmp_path):
    edges = rmat_edges(32, 128, seed=1)
    path = tmp_path / "g.txt"
    write_edge_list(edges, path)
    back = read_edge_list(path)
    assert back.n_vertices >= edges.src.max() + 1
    assert sorted(back.as_tuples()) == sorted(edges.as_tuples())


def test_edge_list_without_weights(tmp_path):
    edges = EdgeList.from_tuples(4, [(0, 1, 3.0), (1, 2, 5.0)])
    path = tmp_path / "g.txt"
    write_edge_list(edges, path, weights=False)
    back = read_edge_list(path, default_weight=2.0)
    assert np.all(back.wt == 2.0)


def test_read_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# header\n\n0 1 2.5\n# mid\n1 2\n")
    edges = read_edge_list(path)
    assert edges.as_tuples() == [(0, 1, 2.5), (1, 2, 1.0)]


def test_read_explicit_vertex_count(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n")
    edges = read_edge_list(path, n_vertices=10)
    assert edges.n_vertices == 10


def test_read_malformed_line(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError, match="expected"):
        read_edge_list(path)


def test_read_empty_file(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# nothing\n")
    edges = read_edge_list(path)
    assert len(edges) == 0


# -- scenario serialization ------------------------------------------------------


def test_scenario_npz_roundtrip(tmp_path):
    scenario = load_scenario("PK", "tiny", n_snapshots=6)
    path = tmp_path / "scenario.npz"
    save_scenario(scenario, path)
    back = load_scenario_file(path)
    assert back.n_snapshots == scenario.n_snapshots
    assert back.source == scenario.source
    assert back.name == scenario.name
    assert np.array_equal(back.unified.add_step, scenario.unified.add_step)
    assert np.array_equal(back.unified.graph.dst, scenario.unified.graph.dst)
    # loaded scenarios are fully functional
    algo = get_algorithm("bfs")
    result = PlanExecutor(back, algo).run(boe_plan(back.unified))
    validate_workflow(back, algo, result)


# -- evolving graph builder ---------------------------------------------------------


@pytest.fixture
def base_edges():
    return EdgeList.from_tuples(
        5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]
    )


def test_builder_cuts_snapshots(base_edges):
    b = EvolvingGraphBuilder(5, base_edges)
    b.add_edge(time=1.0, src=0, dst=2, weight=2.0)   # batch 0 -> snapshot 1
    b.remove_edge(time=2.5, src=2, dst=3)            # batch 2 -> gone in snap 3
    scenario = b.build(n_snapshots=4, boundaries=np.array([1.0, 2.0, 3.0]))
    g0 = scenario.snapshot_graph(0)
    assert g0.n_edges == 4 and not g0.has_edge(0, 2)
    g1 = scenario.snapshot_graph(1)
    assert g1.has_edge(0, 2) and g1.has_edge(2, 3)
    g3 = scenario.snapshot_graph(3)
    assert g3.has_edge(0, 2) and not g3.has_edge(2, 3)


def test_builder_net_effect_resolution(base_edges):
    """Flapping within one transition resolves to the net state."""
    b = EvolvingGraphBuilder(5, base_edges)
    b.add_edge(0.1, 0, 3)
    b.remove_edge(0.2, 0, 3)
    b.add_edge(0.3, 0, 3, weight=7.0)  # net: added in batch 0
    scenario = b.build(n_snapshots=2, boundaries=np.array([1.0]))
    g1 = scenario.snapshot_graph(1)
    assert g1.has_edge(0, 3)
    assert not scenario.snapshot_graph(0).has_edge(0, 3)


def test_builder_rejects_double_change(base_edges):
    b = EvolvingGraphBuilder(5, base_edges)
    b.add_edge(0.5, 0, 2)     # appears in snapshot 1
    b.remove_edge(1.5, 0, 2)  # disappears in snapshot 2 -> two changes
    with pytest.raises(ValueError, match="split the window"):
        b.build(n_snapshots=3, boundaries=np.array([1.0, 2.0]))


def test_builder_equal_time_boundaries(base_edges):
    b = EvolvingGraphBuilder(5, base_edges)
    for t in (0.0, 1.0, 2.0, 3.0):
        b.add_edge(t, 4, int(t))
    bounds = b.boundaries(4)
    assert bounds.shape == (3,)
    assert bounds[-1] == 3.0


def test_builder_validates_events():
    b = EvolvingGraphBuilder(3)
    with pytest.raises(ValueError):
        b.add_edge(0.0, 5, 1)
    with pytest.raises(ValueError):
        b.record(EdgeEvent(0.0, 0, -1))
    with pytest.raises(ValueError):
        b.build(n_snapshots=1)
    with pytest.raises(ValueError):
        b.boundaries(3)  # no events


def test_builder_scenario_is_workflow_ready():
    """A built window runs through the full pipeline and validates."""
    rng = np.random.default_rng(0)
    base = rmat_edges(48, 300, seed=6)
    b = EvolvingGraphBuilder(48, base)
    taken = {(int(s), int(d)) for s, d in zip(base.src, base.dst)}
    added = 0
    while added < 30:
        s, d = int(rng.integers(48)), int(rng.integers(48))
        if s == d or (s, d) in taken:
            continue
        taken.add((s, d))
        b.add_edge(rng.uniform(0, 10), s, d, weight=float(rng.uniform(1, 8)))
        added += 1
    doomed = rng.choice(len(base), size=20, replace=False)
    for i in doomed:
        b.remove_edge(rng.uniform(0, 10), int(base.src[i]), int(base.dst[i]))

    scenario = b.build(n_snapshots=5)
    algo = get_algorithm("sssp")
    result = PlanExecutor(scenario, algo).run(boe_plan(scenario.unified))
    validate_workflow(scenario, algo, result)


def test_npz_rejects_truncated_file(tmp_path):
    import numpy as np

    path = tmp_path / "bogus.npz"
    np.savez(path, unrelated=np.arange(3))
    with pytest.raises(KeyError):
        load_scenario_file(path)


def test_save_load_window_server_state(tmp_path):
    """A slid window round-trips through the npz format."""
    from repro.algorithms import get_algorithm
    from repro.core import WindowServer
    from repro.engines.validation import evaluate_reference
    from repro.evolving import synthesize_scenario

    pool = rmat_edges(48, 320, seed=31)
    scenario = synthesize_scenario(pool, n_snapshots=4, batch_pct=0.04, seed=7)
    server = WindowServer(scenario, get_algorithm("sssp"))
    path = tmp_path / "window.npz"
    save_scenario(server.scenario, path)
    back = load_scenario_file(path)
    for k in range(back.n_snapshots):
        a = evaluate_reference(back, get_algorithm("sssp"), k)
        assert np.allclose(a, server.values(k), equal_nan=True)
