"""Tests for the hardware version table (§4.3)."""

import pytest

from repro.accel.version_table import BatchStatus, VersionTable
from repro.evolving.batches import BatchId, BatchKind


def bid(kind, step):
    return BatchId(BatchKind.ADDITION if kind == "+" else BatchKind.DELETION, step)


def test_initial_aliasing():
    vt = VersionTable(4)
    assert vt.alias_group(0) == [0, 1, 2, 3]
    assert vt.resolve(3) == 0


def test_peel_gives_own_state():
    vt = VersionTable(4)
    vt.peel(3)
    assert vt.resolve(3) == 3
    assert vt.alias_group(0) == [0, 1, 2]
    assert vt.alias_group(3) == [3]


def test_peel_copies_composition():
    vt = VersionTable(3)
    b = bid("-", 1)
    vt.begin_batch(b, [0])
    vt.finish_batch(b, [0])
    vt.peel(2)
    assert vt.composition(2) == {b}
    # chain updates after the peel do not affect the peeled snapshot
    b2 = bid("-", 0)
    vt.begin_batch(b2, [0])
    vt.finish_batch(b2, [0])
    assert vt.composition(0) == {b, b2}
    assert vt.composition(2) == {b}


def test_shared_batch_updates_whole_alias_group():
    vt = VersionTable(4)
    b = bid("-", 2)
    vt.begin_batch(b, [0, 1, 2])
    vt.finish_batch(b, [0, 1, 2])
    for k in range(4):
        assert b in vt.composition(k)  # all alias state 0


def test_double_begin_rejected():
    vt = VersionTable(2)
    b = bid("+", 0)
    vt.begin_batch(b, [1])
    with pytest.raises(RuntimeError):
        vt.begin_batch(b, [1])


def test_finish_requires_active():
    vt = VersionTable(2)
    with pytest.raises(RuntimeError):
        vt.finish_batch(bid("+", 0), [1])


def test_batch_status_lifecycle():
    vt = VersionTable(2)
    b = bid("+", 0)
    assert vt.batch_status.get(b) is None
    vt.begin_batch(b, [1])
    assert vt.batch_status[b] is BatchStatus.ACTIVE
    vt.finish_batch(b, [1])
    assert vt.batch_status[b] is BatchStatus.COMPLETE


def test_complete_snapshot_rejects_new_batches():
    vt = VersionTable(2)
    vt.mark_complete(1)
    with pytest.raises(RuntimeError):
        vt.begin_batch(bid("+", 0), [1])


def test_all_complete():
    vt = VersionTable(2)
    assert not vt.all_complete()
    vt.mark_complete(0)
    vt.mark_complete(1)
    assert vt.all_complete()


def test_needs_at_least_one_snapshot():
    with pytest.raises(ValueError):
        VersionTable(0)


def test_boe_peel_sequence_matches_algorithm1():
    """Replay Algorithm 1's stage structure through the version table."""
    n = 5
    vt = VersionTable(n)
    for i in range(n - 2, -1, -1):
        vt.peel(i + 1)
        add = bid("+", i)
        vt.begin_batch(add, list(range(i + 1, n)))
        vt.finish_batch(add, list(range(i + 1, n)))
        dele = bid("-", i)
        vt.begin_batch(dele, list(range(0, i + 1)))
        vt.finish_batch(dele, list(range(0, i + 1)))
    for k in range(n):
        expected = {bid("-", j) for j in range(k, n - 1)} | {
            bid("+", j) for j in range(0, k)
        }
        assert vt.composition(k) == expected, k
