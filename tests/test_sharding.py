"""Tests for sharded scatter-gather serving (`repro.service.sharding`).

The correctness anchor is differential: a sharded front end must be
bit-exact with the plain single-node service for every algorithm, with
and without ingested deltas, windows included.  The unit layers (row
restriction, delta splitting, the scatter kernel, labeled metrics) run
without any pool; the fleet tests each spin up real per-shard process
pools at tiny scale with one worker per shard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.core.multi_query import evaluate_multi_query
from repro.experiments.runner import scenario_cache
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    DeltaBatch,
    QueryRequest,
    QueryService,
    ScatterGatherFrontEnd,
    ServiceConfig,
    ShardManager,
    synthesize_delta,
)
from repro.service.sharding import merge_sub_deltas, restrict_rows
from repro.service.sharding.partial import scatter_relax

TINY = dict(scale="tiny", n_snapshots=4, workers=1)
ALGOS = sorted(a.lower() for a in ALGORITHMS)


def _config(**kw) -> ServiceConfig:
    return ServiceConfig(**{**TINY, "coalesce_ms": 1.0, **kw})


def _scenario():
    return scenario_cache("PK", "tiny", n_snapshots=4)


# -- restrict_rows ----------------------------------------------------------


def test_restrict_rows_partitions_the_union_edges():
    scenario = _scenario()
    g = scenario.unified.graph
    mid = g.n_vertices // 2
    left = restrict_rows(scenario, 0, mid)
    right = restrict_rows(scenario, mid, g.n_vertices)
    assert left.unified.graph.n_vertices == g.n_vertices
    assert (
        left.unified.graph.n_edges + right.unified.graph.n_edges
        == g.n_edges
    )
    # every restricted edge's source is inside its range
    assert np.all(left.unified.graph.src_of_edge < mid)
    assert np.all(right.unified.graph.src_of_edge >= mid)


def test_restrict_rows_full_range_is_identity():
    scenario = _scenario()
    g = scenario.unified.graph
    full = restrict_rows(scenario, 0, g.n_vertices)
    assert full.unified.graph.n_edges == g.n_edges
    np.testing.assert_array_equal(full.unified.graph.indptr, g.indptr)


def test_restrict_rows_rejects_bad_range():
    scenario = _scenario()
    n = scenario.unified.graph.n_vertices
    with pytest.raises(ValueError):
        restrict_rows(scenario, -1, n)
    with pytest.raises(ValueError):
        restrict_rows(scenario, 0, n + 1)
    with pytest.raises(ValueError):
        restrict_rows(scenario, 5, 4)


# -- scatter kernel ---------------------------------------------------------


@pytest.mark.parametrize("algo_name", ["bfs", "sssp"])
def test_scatter_relax_single_range_matches_multi_query(algo_name):
    """One shard owning everything is plain multi-query evaluation."""
    scenario = _scenario()
    algorithm = get_algorithm(algo_name)
    n = scenario.unified.graph.n_vertices
    n_snapshots = scenario.n_snapshots
    sources = [1, 17]
    n_states = len(sources) * n_snapshots
    sv, ss, sval = [], [], []
    for q, src in enumerate(sources):
        for k in range(n_snapshots):
            sv.append(src)
            ss.append(q * n_snapshots + k)
            sval.append(algorithm.source_value)
    out = scatter_relax(
        scenario, algorithm, 0, n, n_states,
        np.array(sv), np.array(ss), np.array(sval, dtype=np.float64),
    )
    values = np.repeat(
        algorithm.identity_values(n)[None, :], n_states, axis=0
    )
    values[out.upd_states, out.upd_vertices] = out.upd_values
    assert out.bnd_vertices.size == 0  # no remote vertices exist
    mq = evaluate_multi_query(scenario, algorithm, sources)
    for q in range(len(sources)):
        for k in range(n_snapshots):
            np.testing.assert_array_equal(
                values[q * n_snapshots + k], mq.values(q, k)
            )


def test_scatter_relax_state_block_suppresses_known_seeds():
    """Seeds that do not improve the preloaded block must not activate."""
    scenario = _scenario()
    algorithm = get_algorithm("bfs")
    n = scenario.unified.graph.n_vertices
    first = scatter_relax(
        scenario, algorithm, 0, n, 1,
        np.array([1]), np.array([0]),
        np.array([algorithm.source_value]),
    )
    block = np.repeat(algorithm.identity_values(n)[None, :], 1, axis=0)
    block[first.upd_states, first.upd_vertices] = first.upd_values
    again = scatter_relax(
        scenario, algorithm, 0, n, 1,
        np.array([1]), np.array([0]),
        np.array([algorithm.source_value]),
        state_block=block,
    )
    assert again.rounds == 0
    assert again.upd_vertices.size == 0


# -- delta splitting --------------------------------------------------------


def _fleet(n_shards, **kw):
    return ShardManager(n_shards, _config(**kw))


def test_split_delta_routes_by_owner_and_merges_back():
    mgr = _fleet(3)
    scenario = _scenario()
    delta = synthesize_delta(scenario, seed=7, n_add=20, n_del=10)
    subs = mgr.split_delta("PK", delta)
    assert len(subs) == 3
    part = mgr.partitioner("PK")
    for i, sub in enumerate(subs):
        if sub.add_src.size:
            assert np.all(part.partition_of(sub.add_src) == i)
        if sub.del_src.size:
            assert np.all(part.partition_of(sub.del_src) == i)
        assert sub.meta["shard"] == i
    merged = merge_sub_deltas(subs)
    want = sorted(zip(delta.add_src, delta.add_dst, delta.add_wt))
    got = sorted(zip(merged.add_src, merged.add_dst, merged.add_wt))
    assert got == want
    assert sorted(zip(merged.del_src, merged.del_dst)) == sorted(
        zip(delta.del_src, delta.del_dst)
    )
    assert "shard" not in merged.meta


def test_split_delta_rejects_out_of_range_vertices():
    mgr = _fleet(2)
    n = _scenario().unified.graph.n_vertices
    bad = DeltaBatch.from_lists(adds=[(n + 5, 0, 1.0)], dels=[])
    with pytest.raises(ValueError):
        mgr.split_delta("PK", bad)


def test_surplus_shards_own_empty_ranges():
    """More shards than partitions: the tail shards own nothing."""
    n = _scenario().unified.graph.n_vertices
    mgr = _fleet(3)
    part = mgr.partitioner("PK")
    for shard in range(part.n_partitions, 3):
        assert mgr.vertex_range("PK", shard) == (n, n)
    # and a genuinely clamped partitioner: more partitions than vertices
    from repro.graph.csr import CSRGraph
    from repro.graph.partition import VertexPartitioner

    g = CSRGraph.from_tuples(3, [(0, 1), (1, 2)])
    p = VertexPartitioner(g.indptr, 10)
    assert p.n_partitions <= 3


# -- labeled metrics --------------------------------------------------------


def test_labeled_counter_renders_per_shard_children():
    reg = MetricsRegistry()
    fam = reg.labeled_counter("mega_test_total", "per-shard test counter")
    fam.labels(0).inc(3)
    fam.labels(1).inc(5)
    text = reg.render()
    assert 'mega_test_total{shard="0"} 3' in text
    assert 'mega_test_total{shard="1"} 5' in text
    # one HELP/TYPE header for the whole family, not one per child
    assert text.count("# HELP mega_test_total") == 1
    assert fam.get() == {"0": 3, "1": 5}


def test_labeled_gauge_set_and_get():
    reg = MetricsRegistry()
    fam = reg.labeled_gauge("mega_test_depth", "per-shard test gauge")
    fam.labels("a").set(7)
    fam.labels("a").set(2)
    assert fam.get() == {"a": 2}
    assert 'mega_test_depth{shard="a"} 2' in reg.render()


# -- fleet: parity with the unsharded service -------------------------------


def _digest(response):
    assert response is not None and response.ok, response
    return [
        (s.snapshot, s.reached, round(s.checksum, 6))
        for s in response.summaries
    ]


def _query_both(plain, fleet, requests, timeout=120.0):
    for request in requests:
        a = plain.submit(
            QueryRequest(**request)
        ).wait(timeout=timeout)
        b = fleet.submit(QueryRequest(**request)).wait(timeout=timeout)
        assert _digest(a) == _digest(b), request


def test_sharded_parity_all_algorithms_with_ingest():
    """The tentpole invariant: 3-shard scatter-gather is bit-exact with
    the single-node engine for every algorithm, before and after a
    routed ingest, windows included."""
    reqs = [
        dict(graph="PK", algo=a, source=s)
        for a in ALGOS
        for s in (1, 17)
    ] + [dict(graph="PK", algo="sssp", source=1, window=(1, 2))]
    with QueryService(_config()) as plain, ScatterGatherFrontEnd(
        _fleet(3)
    ) as fleet:
        _query_both(plain, fleet, reqs)
        delta = synthesize_delta(_scenario(), seed=11, n_add=10, n_del=6)
        assert plain.ingest("PK", delta=delta) == 1
        assert fleet.ingest("PK", delta=delta) == 1
        _query_both(plain, fleet, reqs)


def test_single_shard_fleet_degenerate_parity():
    """--shards 1 semantics: one shard owning every vertex still matches."""
    reqs = [dict(graph="PK", algo="bfs", source=5)]
    with QueryService(_config()) as plain, ScatterGatherFrontEnd(
        _fleet(1)
    ) as fleet:
        _query_both(plain, fleet, reqs)


def test_frontend_rejects_simulate_mode():
    with ScatterGatherFrontEnd(_fleet(2)) as fleet:
        r = fleet.submit(
            QueryRequest(graph="PK", algo="sssp", source=1, mode="simulate")
        ).wait(timeout=30.0)
        assert r is not None and r.status == "error"
        assert "sharded" in r.error


# -- fleet: ingest barrier, rewind, recovery --------------------------------


def test_ingest_aligns_every_shard_epoch():
    mgr = _fleet(2)
    with ScatterGatherFrontEnd(mgr) as fleet:
        assert fleet.ingest("PK", seed=1) == 1
        assert fleet.ingest("PK", seed=2) == 2
        for shard in mgr.shards:
            assert shard.epoch("PK") == 2
        assert mgr.epoch("PK") == 2


def test_failed_ingest_rewinds_every_shard_and_acks_nothing(monkeypatch):
    mgr = _fleet(2)
    with ScatterGatherFrontEnd(mgr) as fleet:
        fleet.ingest("PK", seed=1)
        boom = RuntimeError("injected shard failure")

        def failing_ingest(*a, **kw):
            raise boom

        monkeypatch.setattr(mgr.shards[1], "ingest", failing_ingest)
        with pytest.raises(RuntimeError, match="nothing acked"):
            fleet.ingest("PK", seed=2)
        monkeypatch.undo()
        # no shard moved, the chain did not grow, and ingest still works
        for shard in mgr.shards:
            assert shard.epoch("PK") == 1
        assert mgr.epoch("PK") == 1
        assert fleet.ingest("PK", seed=2) == 2


def test_reconcile_rewinds_a_shard_that_ran_ahead():
    mgr = _fleet(2)
    with ScatterGatherFrontEnd(mgr) as fleet:
        fleet.ingest("PK", seed=1)
        sub = mgr.split_delta(
            "PK", synthesize_delta(_scenario(), seed=99)
        )[0]
        mgr.shards[0].ingest("PK", sub)
        assert mgr.shards[0].epoch("PK") == 2
        assert mgr.reconcile("PK") == {"PK": 1}
        assert [s.epoch("PK") for s in mgr.shards] == [1, 1]


def test_fleet_recovers_per_shard_wals(tmp_path):
    wal_root = str(tmp_path / "fleet")
    cfg = _config()
    mgr = ShardManager(2, cfg, wal_root=wal_root)
    mgr.start()
    try:
        for seed in (1, 2):
            mgr.ingest("PK", seed=seed)
        chain = [d.to_wire() for d in mgr._chains["PK"]]
    finally:
        mgr.stop()
    mgr2 = ShardManager(2, cfg, wal_root=wal_root)
    mgr2.start()
    try:
        assert mgr2.graph_epochs() == {"PK": 2}
        for shard in mgr2.shards:
            assert shard.epoch("PK") == 2
        recovered = [d.to_wire() for d in mgr2._chains["PK"]]

        def canon(wire):
            return (
                sorted(map(tuple, wire["adds"])),
                sorted(map(tuple, wire["dels"])),
            )

        assert [canon(w) for w in recovered] == [canon(w) for w in chain]
    finally:
        mgr2.stop()


# -- fleet: health + metrics surface ---------------------------------------


def test_health_and_metrics_report_per_shard_state():
    with ScatterGatherFrontEnd(_fleet(2)) as fleet:
        fleet.ingest("PK", seed=1)
        r = fleet.submit(
            QueryRequest(graph="PK", algo="bfs", source=1)
        ).wait(timeout=120.0)
        assert r is not None and r.ok
        health = fleet.health()
        sharding = health["sharding"]
        assert sharding["n_shards"] == 2
        assert sharding["scatter_rounds"] >= 1
        assert [e["shard"] for e in sharding["shards"]] == [0, 1]
        for entry in sharding["shards"]:
            assert entry["role"] == "primary"
            assert entry["epochs"] == {"PK": 1}
            assert entry["wal_enabled"] is False
            assert entry["shm_generation"] >= 1
            assert entry["workers"] == 1
        text = fleet.metrics_text()
        assert 'mega_shard_scatter_plans_total{shard="0"}' in text
        assert 'mega_shard_epoch{shard="1"} 1' in text
        stats = fleet.scatter_stats()
        assert stats["global_rounds"] >= 1
        assert stats["scatter_stage"]["rounds"] >= 1
        assert sum(stats["scatter_plans"].values()) >= 1
