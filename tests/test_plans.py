"""Tests for workflow plan generation (schedule IR)."""

import numpy as np
import pytest

from repro.evolving.batches import BatchKind
from repro.schedule import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    boe_plan,
    direct_hop_plan,
    plan_for,
    streaming_plan,
    work_sharing_plan,
)

ALL_PLANS = [streaming_plan, direct_hop_plan, work_sharing_plan, boe_plan]


@pytest.mark.parametrize("factory", ALL_PLANS)
def test_every_plan_marks_every_snapshot(small_scenario, factory):
    plan = factory(small_scenario.unified)
    assert sorted(plan.snapshots_marked()) == list(
        range(small_scenario.n_snapshots)
    )


@pytest.mark.parametrize("factory", ALL_PLANS)
def test_states_within_bounds(small_scenario, factory):
    plan = factory(small_scenario.unified)
    for step in plan.steps:
        if isinstance(step, EvalFull):
            assert 0 <= step.state < plan.n_states
        elif isinstance(step, CopyState):
            assert 0 <= step.src < plan.n_states
            assert 0 <= step.dst < plan.n_states
        elif isinstance(step, ApplyEdges):
            assert all(0 <= t < plan.n_states for t in step.targets)


def test_plan_for_lookup(small_scenario):
    assert plan_for("boe", small_scenario.unified).name == "boe"
    with pytest.raises(KeyError):
        plan_for("bogus", small_scenario.unified)


def test_streaming_plan_structure(small_scenario):
    plan = streaming_plan(small_scenario.unified)
    n = small_scenario.n_snapshots
    assert plan.initial_graph == "snapshot0"
    adds = [s for s in plan.steps if isinstance(s, ApplyEdges)]
    dels = [s for s in plan.steps if isinstance(s, DeleteEdges)]
    assert len(adds) == len(dels) == n - 1
    assert plan.n_states == 1


def test_only_streaming_deletes(small_scenario):
    for factory in (direct_hop_plan, work_sharing_plan, boe_plan):
        plan = factory(small_scenario.unified)
        assert not any(isinstance(s, DeleteEdges) for s in plan.steps)


def test_direct_hop_edge_multiplier(small_scenario):
    """Fig. 3: Direct-Hop applies ~N/2 times the edges streaming does."""
    u = small_scenario.unified
    n = u.n_snapshots
    dh = direct_hop_plan(u).applied_edge_total()
    st_plan = streaming_plan(u)
    streaming_total = st_plan.applied_edge_total() + st_plan.deleted_edge_total()
    ratio = dh / streaming_total
    assert 0.3 * n <= ratio <= 0.7 * n


def test_work_sharing_edge_multiplier(small_scenario):
    """Fig. 3: Work-Sharing applies ~2x the edges streaming does."""
    u = small_scenario.unified
    ws = work_sharing_plan(u).applied_edge_total()
    st_plan = streaming_plan(u)
    streaming_total = st_plan.applied_edge_total() + st_plan.deleted_edge_total()
    assert 1.5 <= ws / streaming_total <= 3.5


def test_boe_shares_deletion_chain(small_scenario):
    """BOE applies each deletion batch exactly once (shared chain)."""
    plan = boe_plan(small_scenario.unified)
    del_steps = [
        s
        for s in plan.steps
        if isinstance(s, ApplyEdges)
        and s.batches
        and s.batches[0].kind is BatchKind.DELETION
    ]
    n = small_scenario.n_snapshots
    assert len(del_steps) == n - 1
    assert all(len(s.targets) == 1 for s in del_steps)


def test_boe_addition_targets_grow(small_scenario):
    """Stage i applies Δ+_i to snapshots i+1..N-1 simultaneously."""
    plan = boe_plan(small_scenario.unified)
    n = small_scenario.n_snapshots
    add_steps = [
        s
        for s in plan.steps
        if isinstance(s, ApplyEdges)
        and s.batches
        and s.batches[0].kind is BatchKind.ADDITION
    ]
    assert len(add_steps) == n - 1
    for s in add_steps:
        j = s.batches[0].step
        assert s.targets == tuple(range(j + 1, n))


def test_boe_stage_order_is_descending(small_scenario):
    plan = boe_plan(small_scenario.unified)
    stages = [s.stage for s in plan.steps if isinstance(s, ApplyEdges)]
    # pairs of (add, del) per stage, descending
    assert stages == sorted(stages, reverse=True) or all(
        stages[i] >= stages[i + 1] for i in range(len(stages) - 1)
    )


def test_boe_two_snapshot_window():
    from repro.graph.generators import rmat_edges
    from repro.evolving import synthesize_scenario

    pool = rmat_edges(32, 256, seed=0)
    s = synthesize_scenario(pool, n_snapshots=2, batch_pct=0.05, seed=1)
    plan = boe_plan(s.unified)
    assert sorted(plan.snapshots_marked()) == [0, 1]


def test_work_sharing_copies_follow_tree(small_scenario):
    plan = work_sharing_plan(small_scenario.unified)
    copies = [s for s in plan.steps if isinstance(s, CopyState)]
    # a bisection tree over N leaves has 2N-2 tree edges
    n = small_scenario.n_snapshots
    assert len(copies) == 2 * n - 2


def test_applied_edges_reconstruct_snapshots(small_scenario):
    """Replaying any plan's masks reproduces exact snapshot membership."""
    u = small_scenario.unified
    for factory in (direct_hop_plan, work_sharing_plan, boe_plan):
        plan = factory(u)
        masks = {}
        init = u.common_mask
        for step in plan.steps:
            if isinstance(step, EvalFull):
                masks[step.state] = init.copy()
            elif isinstance(step, CopyState):
                masks[step.dst] = masks[step.src].copy()
            elif isinstance(step, ApplyEdges):
                for t in step.targets:
                    masks[t][step.edge_idx] = True
            elif isinstance(step, MarkSnapshot):
                expected = u.presence_mask(step.snapshot)
                assert np.array_equal(masks[step.state], expected), (
                    plan.name,
                    step.snapshot,
                )


def test_plans_handle_single_snapshot_window():
    """Every workflow degenerates gracefully on a one-snapshot (static)
    window: evaluate and mark, no batches."""
    from repro.accel.graphpulse import static_scenario
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import rmat_edges

    g = CSRGraph.from_edges(rmat_edges(32, 128, seed=1))
    scenario = static_scenario(g)
    for factory in ALL_PLANS:
        plan = factory(scenario.unified)
        assert plan.snapshots_marked() == [0]
        assert plan.applied_edge_total() == 0
        assert plan.deleted_edge_total() == 0
