"""Integration tests for the JetStream and MEGA simulators."""

import numpy as np
import pytest

from repro.accel import JetStreamSimulator, MegaSimulator, mega_config
from repro.algorithms import get_algorithm
from repro.workloads import load_scenario


@pytest.fixture(scope="module")
def pk_scenario():
    # paper defaults: 16 snapshots, 1% batches
    return load_scenario("PK", "tiny")


@pytest.fixture(scope="module")
def sssp():
    return get_algorithm("sssp")


@pytest.fixture(scope="module")
def reports(pk_scenario, sssp):
    js = JetStreamSimulator().run(pk_scenario, sssp, validate=True)
    out = {"jetstream": js}
    for wf, bp in [
        ("direct-hop", False),
        ("work-sharing", False),
        ("boe", False),
        ("boe", True),
    ]:
        key = wf + ("+bp" if bp else "")
        out[key] = MegaSimulator(wf, pipeline=bp).run(
            pk_scenario, sssp, validate=True
        )
    return out


def test_all_runs_produce_cycles(reports):
    for name, r in reports.items():
        assert r.cycles > 0, name
        assert r.update_cycles > 0, name
        assert r.update_cycles <= r.cycles


def test_mega_workflows_all_beat_or_match_ordering(reports):
    """The Table 4 ordering: BOE+BP fastest, then BOE, then WS."""
    assert reports["boe+bp"].update_cycles <= reports["boe"].update_cycles
    assert reports["boe"].update_cycles < reports["work-sharing"].update_cycles
    assert (
        reports["work-sharing"].update_cycles
        < reports["direct-hop"].update_cycles
    )


def test_boe_beats_jetstream_substantially(reports):
    speedup = reports["boe+bp"].speedup_over(reports["jetstream"])
    assert speedup > 2.0


def test_jetstream_deletions_dominate(reports):
    """Fig. 2: the deletion phase costs several times the addition phase."""
    js = reports["jetstream"]
    assert js.phase_cycles["del"] > 2.0 * js.phase_cycles["add"]


def test_boe_lowest_edge_reads(reports):
    """Fig. 16 ordering: BOE < WS < DH edge reads."""
    boe = reports["boe"].counters.edges_fetched
    ws = reports["work-sharing"].counters.edges_fetched
    dh = reports["direct-hop"].counters.edges_fetched
    assert boe < ws < dh


def test_boe_lowest_vertex_writes(reports):
    """Fig. 18 ordering."""
    boe = reports["boe"].counters.vertex_writes
    ws = reports["work-sharing"].counters.vertex_writes
    dh = reports["direct-hop"].counters.vertex_writes
    assert boe < ws < dh


def test_pipelining_never_hurts(reports):
    assert reports["boe+bp"].cycles <= reports["boe"].cycles * 1.001


def test_pipelining_flag_recorded(reports):
    assert reports["boe+bp"].pipelined
    assert not reports["boe"].pipelined
    assert reports["boe+bp"].workflow == "boe+bp"


def test_round_series_available(reports):
    series = reports["jetstream"].round_series
    assert series and any(len(s) > 1 for s in series)


def test_mega_rejects_unknown_workflow():
    with pytest.raises(ValueError):
        MegaSimulator("bogus")
    with pytest.raises(ValueError):
        MegaSimulator("direct-hop", pipeline=True)


def test_memory_size_sweep_monotone(pk_scenario, sssp):
    """Fig. 15: more on-chip memory never slows MEGA down (BOE)."""
    cycles = []
    for mb in (4, 16, 64):
        cfg = mega_config().with_onchip_mb(mb)
        r = MegaSimulator("boe", config=cfg).run(pk_scenario, sssp)
        cycles.append(r.update_cycles)
    assert cycles[0] >= cycles[1] >= cycles[2]


def test_partition_count_drops_with_memory(pk_scenario, sssp):
    small = MegaSimulator(
        "boe", config=mega_config().with_onchip_mb(4)
    ).run(pk_scenario, sssp)
    big = MegaSimulator(
        "boe", config=mega_config().with_onchip_mb(256)
    ).run(pk_scenario, sssp)
    assert small.n_partitions > big.n_partitions


def test_capacity_scale_comes_from_scenario(pk_scenario, sssp):
    """config_for_scenario applies the proxy scale automatically."""
    r = MegaSimulator("boe").run(pk_scenario, sssp)
    # PK tiny: 80 vertices of a 1.6M-vertex graph -> tiny effective memory,
    # hence more than one partition for 8 concurrent snapshots
    assert r.n_partitions >= 2


def test_explicit_config_scale_respected(pk_scenario, sssp):
    cfg = mega_config(capacity_scale=1.0).scaled(1.0)
    r = MegaSimulator("boe", config=cfg).run(pk_scenario, sssp)
    # unscaled 64 MB swallows the tiny proxy: no partitioning at all
    assert r.n_partitions == 1


def test_jetstream_unpartitioned_single_snapshot(pk_scenario, sssp):
    js = JetStreamSimulator().run(pk_scenario, sssp)
    assert js.n_partitions == 1


def test_counters_are_consistent(reports):
    for name, r in reports.items():
        c = r.counters
        assert c.edge_block_hits + c.edge_block_misses > 0, name
        assert c.dram_bytes >= c.spill_bytes, name
        assert c.events_generated >= 0 and c.rounds > 0, name


def test_report_summary_strings(reports):
    s = reports["boe"].summary()
    assert "mega" in s and "boe" in s


def test_all_algorithms_simulate(pk_scenario):
    """Every Table 1 algorithm runs and validates on both simulators."""
    for name in ("bfs", "sswp", "ssnp", "viterbi"):
        algo = get_algorithm(name)
        JetStreamSimulator().run(pk_scenario, algo, validate=True)
        MegaSimulator("boe", pipeline=True).run(
            pk_scenario, algo, validate=True
        )


def test_validation_tolerance_parameters(pk_scenario, sssp):
    """validate_workflow's tolerances are honored (tight rtol flags a
    value nudged within default tolerance)."""
    import numpy as np

    from repro.engines import PlanExecutor
    from repro.engines.validation import validate_workflow
    from repro.schedule import boe_plan

    result = PlanExecutor(pk_scenario, sssp).run(
        boe_plan(pk_scenario.unified)
    )
    finite = np.isfinite(result.snapshot_values[0])
    v = int(np.flatnonzero(finite)[1])
    result.snapshot_values[0][v] *= 1 + 1e-10
    # passes at default tolerance ...
    validate_workflow(pk_scenario, sssp, result)
    # ... and fails when asked to be strict
    with pytest.raises(AssertionError):
        validate_workflow(pk_scenario, sssp, result, rtol=1e-14, atol=0.0)
