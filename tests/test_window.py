"""Tests for ad-hoc time-window extraction."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import evaluate_reference, validate_workflow
from repro.evolving.window import extract_window, window_scenario
from repro.schedule import boe_plan, work_sharing_plan


def edge_set(graph):
    return set(zip(graph.src_of_edge.tolist(), graph.dst.tolist()))


def test_window_snapshots_match_original(small_scenario):
    u = small_scenario.unified
    lo, hi = 2, 5
    w = extract_window(u, lo, hi)
    assert w.n_snapshots == hi - lo + 1
    for k in range(lo, hi + 1):
        assert edge_set(w.snapshot_graph(k - lo)) == edge_set(
            u.snapshot_graph(k)
        )


def test_window_common_graph_is_range_common(small_scenario):
    u = small_scenario.unified
    lo, hi = 1, 6
    w = extract_window(u, lo, hi)
    inter = None
    for k in range(lo, hi + 1):
        s = edge_set(u.snapshot_graph(k))
        inter = s if inter is None else inter & s
    assert edge_set(w.common_graph()) == inter


def test_window_drops_outside_edges(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 3, 4)
    union = set()
    for k in (3, 4):
        union |= edge_set(u.snapshot_graph(k))
    assert edge_set(w.graph) == union


def test_full_window_is_identity(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 0, u.n_snapshots - 1)
    assert w.n_union_edges == u.n_union_edges
    assert np.array_equal(w.add_step, u.add_step)
    assert np.array_equal(w.del_step, u.del_step)


def test_single_snapshot_window(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 4, 4)
    assert w.n_snapshots == 1
    assert bool(w.common_mask.all())
    assert edge_set(w.snapshot_graph(0)) == edge_set(u.snapshot_graph(4))


def test_window_bounds_checked(small_scenario):
    u = small_scenario.unified
    with pytest.raises(IndexError):
        extract_window(u, 3, 2)
    with pytest.raises(IndexError):
        extract_window(u, 0, u.n_snapshots)


@pytest.mark.parametrize("factory", [boe_plan, work_sharing_plan])
def test_workflows_run_on_windows(small_scenario, factory):
    """Every workflow evaluates a sub-window correctly."""
    algo = get_algorithm("sssp")
    sub = window_scenario(small_scenario, 2, 6)
    result = PlanExecutor(sub, algo).run(factory(sub.unified))
    validate_workflow(sub, algo, result)
    # and window values equal the original scenario's snapshot values
    for k in range(2, 7):
        expected = evaluate_reference(small_scenario, algo, k)
        assert np.allclose(result.values(k - 2), expected, equal_nan=True)


def test_window_scenario_metadata(small_scenario):
    sub = window_scenario(small_scenario, 1, 3)
    assert sub.metadata["window"] == (1, 3)
    assert sub.source == small_scenario.source
    assert "[1:3]" in sub.name
