"""Tests for ad-hoc time-window extraction and window sliding."""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import evaluate_reference, validate_workflow
from repro.evolving.unified_csr import UnifiedCSR
from repro.evolving.window import extract_window, slide_window, window_scenario
from repro.graph.csr import CSRGraph
from repro.graph.edges import EdgeList
from repro.schedule import boe_plan, work_sharing_plan


def edge_set(graph):
    return set(zip(graph.src_of_edge.tolist(), graph.dst.tolist()))


def test_window_snapshots_match_original(small_scenario):
    u = small_scenario.unified
    lo, hi = 2, 5
    w = extract_window(u, lo, hi)
    assert w.n_snapshots == hi - lo + 1
    for k in range(lo, hi + 1):
        assert edge_set(w.snapshot_graph(k - lo)) == edge_set(
            u.snapshot_graph(k)
        )


def test_window_common_graph_is_range_common(small_scenario):
    u = small_scenario.unified
    lo, hi = 1, 6
    w = extract_window(u, lo, hi)
    inter = None
    for k in range(lo, hi + 1):
        s = edge_set(u.snapshot_graph(k))
        inter = s if inter is None else inter & s
    assert edge_set(w.common_graph()) == inter


def test_window_drops_outside_edges(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 3, 4)
    union = set()
    for k in (3, 4):
        union |= edge_set(u.snapshot_graph(k))
    assert edge_set(w.graph) == union


def test_full_window_is_identity(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 0, u.n_snapshots - 1)
    assert w.n_union_edges == u.n_union_edges
    assert np.array_equal(w.add_step, u.add_step)
    assert np.array_equal(w.del_step, u.del_step)


def test_single_snapshot_window(small_scenario):
    u = small_scenario.unified
    w = extract_window(u, 4, 4)
    assert w.n_snapshots == 1
    assert bool(w.common_mask.all())
    assert edge_set(w.snapshot_graph(0)) == edge_set(u.snapshot_graph(4))


def test_window_bounds_checked(small_scenario):
    u = small_scenario.unified
    with pytest.raises(IndexError):
        extract_window(u, 3, 2)
    with pytest.raises(IndexError):
        extract_window(u, 0, u.n_snapshots)


@pytest.mark.parametrize("factory", [boe_plan, work_sharing_plan])
def test_workflows_run_on_windows(small_scenario, factory):
    """Every workflow evaluates a sub-window correctly."""
    algo = get_algorithm("sssp")
    sub = window_scenario(small_scenario, 2, 6)
    result = PlanExecutor(sub, algo).run(factory(sub.unified))
    validate_workflow(sub, algo, result)
    # and window values equal the original scenario's snapshot values
    for k in range(2, 7):
        expected = evaluate_reference(small_scenario, algo, k)
        assert np.allclose(result.values(k - 2), expected, equal_nan=True)


def test_window_scenario_metadata(small_scenario):
    sub = window_scenario(small_scenario, 1, 3)
    assert sub.metadata["window"] == (1, 3)
    assert sub.source == small_scenario.source
    assert "[1:3]" in sub.name


# -- sliding ---------------------------------------------------------------


def _edgeless_window(n_vertices: int = 8, n_snapshots: int = 4) -> UnifiedCSR:
    empty = EdgeList.from_tuples(n_vertices, [])
    return UnifiedCSR(
        CSRGraph.from_edges(empty),
        np.zeros(0, np.int32),
        np.zeros(0, np.int32),
        n_snapshots,
    )


def test_slide_empty_union_with_addition():
    """Regression: sliding an edgeless window used to raise IndexError
    (``slots_of`` fancy-indexed ``union_keys[pos]`` before its guard)."""
    u = _edgeless_window()
    adds = EdgeList.from_tuples(u.n_vertices, [(1, 2, 1.5)])
    result = slide_window(u, adds, [])
    assert result.unified.n_snapshots == u.n_snapshots
    assert result.del_slots.size == 0
    assert result.add_slots.tolist() == [0]
    # the addition arrives at the last transition of the slid window
    assert int(result.unified.presence_mask(u.n_snapshots - 1).sum()) == 1
    for k in range(u.n_snapshots - 1):
        assert int(result.unified.presence_mask(k).sum()) == 0


def test_slide_empty_union_noop():
    u = _edgeless_window()
    result = slide_window(u)
    assert result.unified.n_union_edges == 0
    assert result.del_slots.size == 0 and result.add_slots.size == 0


def test_slide_empty_union_deletion_is_value_error():
    """A deletion against an empty union must fail validation with the
    'not present' ValueError, not crash with IndexError."""
    u = _edgeless_window()
    with pytest.raises(ValueError, match="not present"):
        slide_window(u, None, [(1, 2)])


def test_slide_rejects_missing_and_duplicate_edges(small_scenario):
    u = small_scenario.unified
    n = u.n_vertices
    present = u.presence_mask(u.n_snapshots - 1)
    live_slot = int(np.flatnonzero(present)[0])
    src = int(u.graph.src_of_edge[live_slot])
    dst = int(u.graph.dst[live_slot])
    with pytest.raises(ValueError, match="duplicate a live edge"):
        slide_window(u, EdgeList.from_tuples(n, [(src, dst, 1.0)]), [])
    absent = (src + 1) % n, src  # may exist; search for a truly absent pair
    keys = set(zip(u.graph.src_of_edge.tolist(), u.graph.dst.tolist()))
    for a in range(n):
        for b in range(n):
            if a != b and (a, b) not in keys:
                absent = (a, b)
                break
        else:
            continue
        break
    with pytest.raises(ValueError, match="not present"):
        slide_window(u, None, [absent])


def _full_history_changes(u: UnifiedCSR, step: int):
    """The Δ+/Δ- a full-history unified CSR records at ``step``."""
    src, dst, wt = u.graph.src_of_edge, u.graph.dst, u.graph.wt
    add_rows = np.flatnonzero(u.add_step == step)
    del_rows = np.flatnonzero(u.del_step == step)
    adds = EdgeList(
        u.n_vertices, src[add_rows].copy(), dst[add_rows].copy(),
        wt[add_rows].copy(),
    )
    dels = list(zip(src[del_rows].tolist(), dst[del_rows].tolist()))
    return adds, dels


def test_slide_equals_slicing_full_history(small_scenario):
    """Property: for any window of the full history, extracting
    ``[lo, hi]`` and sliding it with the Δs recorded at step ``hi``
    yields exactly ``extract_window(lo + 1, hi + 1)``."""
    u = small_scenario.unified
    for lo in range(u.n_snapshots - 2):
        for width in (1, 2, 3):
            hi = lo + width
            if hi + 1 >= u.n_snapshots:
                continue
            window = extract_window(u, lo, hi)
            adds, dels = _full_history_changes(u, hi)
            slid = slide_window(window, adds, dels).unified
            expected = extract_window(u, lo + 1, hi + 1)
            assert slid.n_union_edges == expected.n_union_edges
            assert np.array_equal(
                slid.graph.src_of_edge, expected.graph.src_of_edge
            )
            assert np.array_equal(slid.graph.dst, expected.graph.dst)
            assert np.array_equal(slid.graph.wt, expected.graph.wt)
            assert np.array_equal(slid.add_step, expected.add_step)
            assert np.array_equal(slid.del_step, expected.del_step)
