"""Tests for the concurrent query service (`repro.service`).

Unit layers (validation, cache, queue, coalescing, ingest) run without
any pool; the end-to-end tests each spin up a real process-pool service
at tiny scale.  Determinism trick: queries submitted *before*
``service.start()`` sit in the admission queue and are drained together
by the batcher's first pass, so coalescing assertions never race the
coalescing timer.
"""

from __future__ import annotations

import io
import json
import pathlib

import pytest

from repro.cli import main
from repro.core.multi_query import evaluate_multi_query
from repro.service import (
    AdmissionQueue,
    DeltaBatch,
    LoadSpec,
    PendingQuery,
    QueryRequest,
    QueryService,
    ResultCache,
    ServiceConfig,
    apply_delta,
    coalesce,
    run_load,
    serve_stdio,
    synthesize_delta,
    validate_request,
)
from repro.service.loadgen import BENCH_SCHEMA_VERSION
from repro.service.pool import _summarize
from repro.service.request import SnapshotSummary

TINY = dict(scale="tiny", n_snapshots=4, workers=1)


def _config(**kw) -> ServiceConfig:
    merged = {**TINY, "coalesce_ms": 2.0, **kw}
    return ServiceConfig(**merged)


def _summaries(n=2):
    return [SnapshotSummary(k, 5 + k, 1.5 * k) for k in range(n)]


# -- request validation ----------------------------------------------------


def test_validate_request_accepts_defaults():
    validate_request(QueryRequest("PK", "sssp", 3), 4, "tiny")


@pytest.mark.parametrize(
    "kw",
    [
        {"graph": "NOPE"},
        {"algo": "nope"},
        {"mode": "dream"},
        {"source": 10**9},
        {"source": -1},
        {"window": (2, 1)},
        {"window": (0, 99)},
    ],
)
def test_validate_request_rejects(kw):
    base = {"graph": "PK", "algo": "sssp", "source": 3}
    with pytest.raises(ValueError):
        validate_request(QueryRequest(**{**base, **kw}), 4, "tiny")


def test_compat_key_separates_epochs_and_windows():
    a = QueryRequest("PK", "sssp", 1)
    b = QueryRequest("PK", "sssp", 2)
    assert a.compat_key(0) == b.compat_key(0)  # sources may differ
    assert a.compat_key(0) != a.compat_key(1)
    assert a.compat_key(0) != QueryRequest("PK", "sssp", 1, window=(0, 1)).compat_key(0)
    assert a.compat_key(0) != QueryRequest("PK", "bfs", 1).compat_key(0)


# -- result cache ----------------------------------------------------------


def test_result_cache_epoch_and_invalidation():
    cache = ResultCache(maxsize=8)
    req = QueryRequest("PK", "sssp", 3)
    assert cache.get(req, 0) is None
    cache.put(req, 0, _summaries())
    assert cache.get(req, 0)[0].reached == 5
    # a new epoch can never hit an old entry
    assert cache.get(req, 1) is None
    # other graphs survive invalidation, this graph's entries do not
    other = QueryRequest("LJ", "sssp", 3)
    cache.put(other, 0, _summaries())
    assert cache.invalidate_graph("PK") == 1
    assert cache.get(req, 0) is None
    assert cache.get(other, 0) is not None
    stats = cache.stats()
    assert stats["hits"] == 2 and stats["misses"] == 3
    assert 0.0 < stats["hit_rate"] < 1.0


def test_result_cache_evicts_lru():
    cache = ResultCache(maxsize=2)
    reqs = [QueryRequest("PK", "sssp", s) for s in range(3)]
    for r in reqs:
        cache.put(r, 0, _summaries())
    assert cache.get(reqs[0], 0) is None  # evicted
    assert cache.get(reqs[2], 0) is not None


# -- admission queue and coalescing ---------------------------------------


def test_admission_queue_sheds_on_overflow():
    q = AdmissionQueue(max_pending=2)
    items = [PendingQuery(QueryRequest("PK", "sssp", s), 0) for s in range(3)]
    assert q.offer(items[0]) and q.offer(items[1])
    assert not q.offer(items[2])
    assert len(q.drain()) == 2 and len(q) == 0


def test_coalesce_groups_compatible_queries():
    pending = [
        PendingQuery(QueryRequest("PK", "sssp", s), 0) for s in (1, 2, 3)
    ] + [
        PendingQuery(QueryRequest("PK", "bfs", 1), 0),
        PendingQuery(QueryRequest("PK", "sssp", 4), 1),  # later epoch
    ]
    plans = coalesce(pending, max_batch=8)
    assert sorted(len(p) for p in plans) == [1, 1, 3]


def test_coalesce_never_emits_empty_plans():
    pending = [
        PendingQuery(QueryRequest("PK", "sssp", s), 0) for s in (1, 2)
    ]
    for max_batch in (0, 1, 2):
        plans = coalesce(pending, max_batch)
        assert all(plans), plans
        assert sum(len(p) for p in plans) == 2


def test_coalesce_splits_at_max_batch_distinct_sources():
    pending = [
        PendingQuery(QueryRequest("PK", "sssp", s), 0)
        for s in (1, 1, 2, 2, 3, 4)
    ]
    plans = coalesce(pending, max_batch=2)
    # duplicates ride free: {1,1,2,2} fits one 2-source plan, {3,4} the next
    assert [len(p) for p in plans] == [4, 2]
    assert all(
        len({q.request.source for q in p}) <= 2 for p in plans
    )


# -- ingest ----------------------------------------------------------------


def test_synthesize_delta_respects_invariants(small_scenario):
    delta = synthesize_delta(small_scenario, seed=7, n_add=6, n_del=6)
    u = small_scenario.unified
    assert delta.n_additions == 6 and delta.n_deletions == 6
    # deletions come from common edges (present everywhere, untouched)
    common = {
        (int(s), int(d))
        for s, d in zip(
            u.graph.src_of_edge[(u.add_step < 0) & (u.del_step < 0)],
            u.graph.dst[(u.add_step < 0) & (u.del_step < 0)],
        )
    }
    assert set(delta.deletions()) <= common
    # additions are absent from the union graph
    union = set(zip(u.graph.src_of_edge.tolist(), u.graph.dst.tolist()))
    adds = set(zip(delta.add_src.tolist(), delta.add_dst.tolist()))
    assert not (adds & union)


def test_apply_delta_is_pure_and_advances_epoch(small_scenario):
    delta = synthesize_delta(small_scenario, seed=3)
    before = small_scenario.unified.graph.n_edges
    advanced = apply_delta(small_scenario, delta)
    assert advanced is not small_scenario
    assert small_scenario.unified.graph.n_edges == before  # untouched
    assert advanced.metadata["epoch"] == 1
    assert advanced.n_snapshots == small_scenario.n_snapshots
    twice = apply_delta(advanced, synthesize_delta(advanced, seed=4))
    assert twice.metadata["epoch"] == 2


def test_delta_batch_from_lists_wire_format():
    d = DeltaBatch.from_lists([[0, 1, 2.5], [1, 2]], [[3, 4]])
    assert d.n_additions == 2 and d.n_deletions == 1
    assert d.add_wt.tolist() == [2.5, 1.0]
    assert d.deletions() == [(3, 4)]


# -- end-to-end: coalescing, parity, cache, ingest ------------------------


def test_service_coalesces_burst_and_matches_direct_evaluation():
    from repro.algorithms import get_algorithm
    from repro.experiments.runner import scenario_cache

    sources = [1, 2, 3, 5, 1, 2, 3, 5]  # 4 distinct, duplicates ride free
    service = QueryService(_config(max_batch=8))
    handles = [
        service.submit(QueryRequest("PK", "sssp", s)) for s in sources
    ]
    with service:  # start after submitting: one drain, one plan
        responses = [h.wait(timeout=120) for h in handles]
    assert all(r is not None and r.status == "ok" for r in responses)
    stats = service.service_stats()
    assert stats["plans"] == 1
    assert stats["plan_queries"] == 8
    assert stats["batching_factor"] == 8.0

    # parity: the service's digests == direct multi-query evaluation
    scenario = scenario_cache("PK", "tiny", n_snapshots=4)
    algo = get_algorithm("sssp")
    direct = evaluate_multi_query(scenario, algo, [1, 2, 3, 5])
    for r, s in zip(responses, sources):
        q = [1, 2, 3, 5].index(s)
        for k, summary in enumerate(r.summaries):
            expect = _summarize(algo, direct.values(q, k), k)
            assert summary.reached == expect.reached
            assert summary.checksum == pytest.approx(expect.checksum)


def test_no_batching_runs_one_plan_per_query():
    service = QueryService(_config(batching=False))
    handles = [
        service.submit(QueryRequest("PK", "sssp", s)) for s in (1, 2, 1, 2)
    ]
    with service:
        assert all(h.wait(timeout=120).ok for h in handles)
    assert service.service_stats()["plans"] == 4


def test_cache_hits_until_ingest_invalidates():
    service = QueryService(_config())
    req = QueryRequest("PK", "sssp", 3)
    with service:
        first = service.submit(req).wait(timeout=120)
        assert first.status == "ok" and first.epoch == 0
        again = service.submit(QueryRequest("PK", "sssp", 3)).wait(timeout=120)
        assert again.status == "cached"
        assert service.epoch("PK") == 0
        assert service.ingest("PK", seed=1) == 1
        fresh = service.submit(QueryRequest("PK", "sssp", 3)).wait(timeout=120)
        assert fresh.status == "ok" and fresh.epoch == 1
    stats = service.service_stats()
    assert stats["cached"] == 1 and stats["ingests"] == 1
    assert stats["errored"] == 0


def test_invalid_query_gets_error_response_not_crash():
    service = QueryService(_config())
    with service:
        bad = service.submit(QueryRequest("PK", "sssp", 10**9)).wait(5)
        ok = service.submit(QueryRequest("PK", "sssp", 1)).wait(timeout=120)
    assert bad.status == "error" and "out of range" in bad.error
    assert ok.status == "ok"


# -- end-to-end: resilience -----------------------------------------------


def test_transient_worker_fault_recovers_in_worker():
    service = QueryService(
        _config(inject_fault=("service.worker-fault",))
    )
    handles = [
        service.submit(QueryRequest("PK", "sssp", s)) for s in (1, 2, 3)
    ]
    with service:
        responses = [h.wait(timeout=120) for h in handles]
    assert all(r.status == "ok" for r in responses)
    stats = service.service_stats()
    assert stats["faults_recovered"] >= 1
    assert stats["errored"] == 0 and stats["retries"] == 0


def test_poisoned_plan_degrades_to_singletons():
    service = QueryService(
        _config(inject_fault=("service.plan-poison",), max_batch=8)
    )
    handles = [
        service.submit(QueryRequest("PK", "sssp", s)) for s in (1, 2, 3)
    ]
    with service:  # burst -> one poisoned plan -> split into singletons
        responses = [h.wait(timeout=120) for h in handles]
    assert all(r.status == "ok" for r in responses)
    stats = service.service_stats()
    assert stats["retries"] == 3
    assert stats["plans"] == 4  # the poisoned plan + three singletons
    assert stats["errored"] == 0


# -- JSON-lines front end --------------------------------------------------


def test_serve_stdio_protocol_and_exit_codes():
    ops = [
        {"op": "query", "graph": "PK", "algo": "sssp", "source": 1},
        {"op": "batch", "queries": [
            {"graph": "PK", "algo": "sssp", "source": 2},
            {"graph": "PK", "algo": "sssp", "source": 2},
        ]},
        {"op": "ingest", "graph": "PK", "seed": 1},
        {"op": "query", "graph": "PK", "algo": "sssp", "source": 1},
        {"op": "stats"},
        {"op": "nope"},
        "not json",
        {"op": "shutdown"},
    ]
    stdin = io.StringIO(
        "\n".join(o if isinstance(o, str) else json.dumps(o) for o in ops)
    )
    stdout = io.StringIO()
    rc = serve_stdio(QueryService(_config()), stdin=stdin, stdout=stdout)
    lines = [json.loads(ln) for ln in stdout.getvalue().splitlines()]
    assert rc == 0
    assert lines[0]["ok"] and lines[0]["status"] == "ok"
    assert lines[1]["ok"] and len(lines[1]["responses"]) == 2
    # the ingest response always names its durability level (ack block)
    assert lines[2]["ok"] and lines[2]["graph"] == "PK"
    assert lines[2]["epoch"] == 1
    assert lines[2]["ack"]["mode"] == "local"
    assert not lines[2]["ack"]["degraded"]
    assert lines[3]["ok"] and lines[3]["epoch"] == 1
    assert lines[4]["stats"]["ingests"] == 1
    assert not lines[5]["ok"] and "unknown op" in lines[5]["error"]
    assert not lines[6]["ok"] and "bad JSON" in lines[6]["error"]
    assert lines[7]["shutting_down"]


def test_serve_stdio_degraded_session_exits_nonzero():
    stdin = io.StringIO(
        json.dumps({"op": "query", "graph": "PK", "source": 10**9}) + "\n"
    )
    rc = serve_stdio(QueryService(_config()), stdin=stdin, stdout=io.StringIO())
    assert rc == 1


# -- load harness ----------------------------------------------------------


def _bench_schema_ok(doc: dict) -> None:
    assert doc["bench"] == "service"
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    r = doc["results"]
    for key in (
        "submitted", "completed", "cached", "errored", "rejected",
        "shed", "client_retries", "gave_up",
        "offered_qps", "throughput_qps", "duration_s", "latency_ms",
        "plans", "batching_factor", "cache_hit_rate", "retries",
        "ingests", "faults", "wal", "stage_latency_ms", "traces",
        # schema 4: replication fields
        "redirects", "role", "replication_lag_epochs",
        # schema 8: sliding-window serving block
        "sliding",
    ):
        assert key in r, key
    assert r["role"] in ("primary", "follower")
    for p in ("p50", "p95", "p99", "mean"):
        assert isinstance(r["latency_ms"][p], float)
    # schema 3: per-stage percentiles over the queries' span timelines
    for stage, pcts in r["stage_latency_ms"].items():
        assert isinstance(stage, str)
        for p in ("p50", "p95", "p99", "mean", "n"):
            assert isinstance(pcts[p], (int, float)), (stage, p)
    assert isinstance(r["traces"], list)
    assert set(r["faults"]) == {"injected", "recovered"}
    assert isinstance(r["wal"].get("enabled"), bool)
    assert isinstance(r["sliding"].get("enabled"), bool)
    if r["sliding"]["enabled"]:
        assert r["sliding"]["parity"]["ok"] in (True, False)
        assert 0.0 <= r["sliding"]["stable_vertex_rate"] <= 1.0
    assert doc["config"]["scale"] in ("tiny", "small", "medium")


def test_run_load_report_schema_and_clean_exit():
    spec = LoadSpec(duration_s=0.4, rate_qps=40, seed=1, n_sources=4,
                    window_fraction=0.25, ingest_every_s=0.2)
    with QueryService(_config()) as service:
        report = run_load(service, spec)
    assert not report.degraded
    r = report.results
    assert r["submitted"] == r["completed"] > 0
    assert r["errored"] == 0 and r["rejected"] == 0
    assert r["ingests"] >= 1
    _bench_schema_ok(json.loads(report.to_json()))
    assert "throughput" in report.format_table()


def test_checked_in_bench_baseline_schema():
    """The committed baseline is the shard-count scaling document: one
    full report per `--compare-shards` leg (identical offered load), the
    headline throughput ratios, and a methodology note that records the
    measurement host's CPU count — the ratios are only meaningful
    relative to it (shards are separate OS worker pools, so scaling
    requires free cores; a single-core host measures protocol overhead)."""
    path = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"
    doc = json.loads(path.read_text())
    assert doc["bench"] == "service-shards"
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    legs = sorted(
        int(k.split("_")[1]) for k in doc if k.startswith("shards_")
    )
    assert legs == [1, 2, 4]
    for n in legs:
        leg = doc[f"shards_{n}"]
        _bench_schema_ok(leg)
        r = leg["results"]
        assert r["errored"] == 0
        assert r["gave_up"] == 0
        if n == 1:
            assert "n_shards" not in r  # plain single-node baseline
        else:
            # schema 5: per-shard stats plus the scatter-gather block
            assert r["n_shards"] == n
            assert len(r["shards"]) == n
            assert r["scatter"]["global_rounds"] > 0
            assert sum(r["scatter"]["scatter_plans"].values()) > 0
    comp = doc["comparison"]
    for n in legs:
        assert comp[f"speedup_{n}shard"] == pytest.approx(
            comp[f"throughput_qps_{n}shard"] / comp["throughput_qps_1shard"]
        )
    assert comp["speedup_1shard"] == pytest.approx(1.0)
    # interpretation contract: the note must state the host's parallelism
    # so readers can tell measured protocol overhead from core starvation
    assert isinstance(doc["host_cpus"], int) and doc["host_cpus"] >= 1
    assert str(doc["host_cpus"]) in doc["methodology"]
    assert "core" in doc["methodology"]


# -- CLI -------------------------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["serve-bench", "--graphs", "NOPE"],
        ["serve-bench", "--algos", "nope"],
        ["serve-bench", "--workers", "0"],
        ["serve-bench", "--max-batch", "0"],
        ["serve-bench", "--inject-fault", "no.such-point"],
        ["serve", "--graphs", "PK,WAT"],
    ],
)
def test_cli_bad_service_arguments_exit_2(argv, capsys):
    assert main(argv) == 2
    assert capsys.readouterr().err.strip()  # one-line operator error


def test_cli_serve_bench_tiny_smoke(tmp_path, capsys):
    out = tmp_path / "bench.json"
    rc = main([
        "serve-bench", "--scale", "tiny", "--snapshots", "4",
        "--workers", "1", "--duration", "0.3", "--rate", "30",
        "--sources", "4", "--out", str(out),
    ])
    assert rc == 0
    assert "serve-bench" in capsys.readouterr().out
    _bench_schema_ok(json.loads(out.read_text()))
