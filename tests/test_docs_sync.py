"""Documentation stays in sync with the code it describes."""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def test_readme_links_exist():
    text = (ROOT / "README.md").read_text()
    for target in re.findall(r"\]\(([^)#]+)\)", text):
        if target.startswith("http"):
            continue
        assert (ROOT / target).exists(), target


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    for name in re.findall(r"`(\w+\.py)`", text):
        assert (ROOT / "examples" / name).exists(), name


def test_design_module_references_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for ref in re.findall(r"`(repro/[\w/]+\.py)`", text):
        assert (ROOT / "src" / ref).exists(), ref


def test_design_bench_references_exist():
    text = (ROOT / "DESIGN.md").read_text()
    for ref in re.findall(r"`(benchmarks/[\w]+\.py)`", text):
        assert (ROOT / ref).exists(), ref


def test_architecture_module_references_exist():
    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
    src = ROOT / "src" / "repro"
    known = {str(p.relative_to(src)) for p in src.rglob("*.py")}
    for ref in re.findall(r"`(\w+(?:/\w+)*\.py)", text):
        if ref.startswith(("tests/", "benchmarks/", "examples/")):
            assert (ROOT / ref).exists(), ref
            continue
        # references may be package-relative (accel/timing.py) or local
        # to the section's package (timing.py)
        assert ref in known or any(
            k.endswith("/" + ref) for k in known
        ), ref


def test_calibration_constants_match_code():
    """The calibration table's values equal the code's actual constants."""
    from repro.accel.config import mega_config
    from repro.baselines.software import SOFTWARE_SYSTEMS

    text = (ROOT / "docs" / "CALIBRATION.md").read_text()
    cfg = mega_config()
    assert f"| 6.0 |" in text and cfg.deletion_event_factor == 6.0
    assert f"| 8 |" in text and cfg.dependence_bytes == 8
    assert f"| 16 |" in text and cfg.round_overhead_cycles == 16
    ns = " / ".join(
        f"{SOFTWARE_SYSTEMS[k].ns_per_event:g}"
        for k in (
            "kickstarter-ws", "risgraph-ws", "risgraph-boe", "subway-ws"
        )
    )
    assert ns in text, ns


def test_experiments_md_mentions_every_bench_file():
    benches = {
        p.stem
        for p in (ROOT / "benchmarks").glob("test_*.py")
    }
    # every paper figure/table bench is covered by the summary table;
    # spot-check the experiment ids appear in EXPERIMENTS.md
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for fig in ("Fig. 2", "Fig. 14", "Fig. 21", "Table 4", "Table 5"):
        assert fig in text
    assert "ext-pe-sweep" in text and "ext-latency" in text
    assert len(benches) >= 20
