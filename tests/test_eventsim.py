"""Cross-check: the exact event-level simulator equals the round engine."""

import numpy as np
import pytest

from repro.accel.eventsim import EventLevelSimulator
from repro.algorithms import SSSP, all_algorithms
from repro.engines import MultiVersionEngine
from repro.evolving import synthesize_scenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


def make_static(graph: CSRGraph) -> UnifiedCSR:
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_full_eval_matches_round_engine(algo):
    g = CSRGraph.from_edges(rmat_edges(48, 300, seed=5))
    u = make_static(g)
    presence = np.ones(g.n_edges, dtype=bool)

    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, presence)
    sim.set_source(0)
    values = sim.run()

    engine = MultiVersionEngine(algo, u)
    expected = engine.evaluate_full(presence, 0)
    assert np.allclose(values[0], expected, equal_nan=True)


def test_incremental_batch_matches_round_engine():
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(40, 240, seed=8))
    u = make_static(g)
    rng = np.random.default_rng(3)
    missing = rng.choice(g.n_edges, size=30, replace=False)
    presence = np.ones(g.n_edges, dtype=bool)
    presence[missing] = False

    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, presence)
    sim.set_source(0)
    sim.run()
    sim.seed_batch(missing, versions=[0])
    values = sim.run()

    engine = MultiVersionEngine(algo, u)
    expected = engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    assert np.allclose(values[0], expected, equal_nan=True)


def test_multi_version_batch_isolation():
    """One batch seeded into two of three versions changes only those."""
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(32, 180, seed=2))
    u = make_static(g)
    rng = np.random.default_rng(9)
    missing = rng.choice(g.n_edges, size=20, replace=False)
    base = np.ones(g.n_edges, dtype=bool)
    base[missing] = False

    sim = EventLevelSimulator(algo, u, n_versions=3)
    for v in range(3):
        sim.set_graph(v, base)
    sim.set_source(0)
    sim.run()
    before = sim.values.copy()
    sim.seed_batch(missing, versions=[0, 2])
    after = sim.run()

    engine = MultiVersionEngine(algo, u)
    full = engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    reduced = engine.evaluate_full(base, 0)
    assert np.allclose(after[0], full, equal_nan=True)
    assert np.allclose(after[2], full, equal_nan=True)
    assert np.allclose(after[1], reduced, equal_nan=True)
    assert np.allclose(before[1], after[1], equal_nan=True)


def test_boe_schedule_on_event_simulator():
    """Drive the event-level datapath through a BOE-like schedule on a
    real evolving scenario and compare every snapshot to ground truth."""
    algo = SSSP()
    pool = rmat_edges(40, 260, seed=4)
    scenario = synthesize_scenario(pool, n_snapshots=4, batch_pct=0.05, seed=1)
    u = scenario.unified
    n = u.n_snapshots

    sim = EventLevelSimulator(algo, u, n_versions=n)
    common = u.common_mask
    for v in range(n):
        sim.set_graph(v, common.copy())
    sim.set_source(scenario.source)
    sim.run()

    # Algorithm 1 stages: additions to diverged snapshots, deletions
    # (re-additions) to the chain group 0..i.
    for i in range(n - 2, -1, -1):
        add = scenario.addition_batch(i)
        sim.seed_batch(add.edge_idx, versions=list(range(i + 1, n)))
        sim.run()
        dele = scenario.deletion_batch(i)
        sim.seed_batch(dele.edge_idx, versions=list(range(0, i + 1)))
        sim.run()

    engine = MultiVersionEngine(algo, u)
    for k in range(n):
        expected = engine.evaluate_full(u.presence_mask(k), scenario.source)
        assert np.allclose(sim.values[k], expected, equal_nan=True), k


def test_stats_account_coalescing():
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(48, 400, seed=7))
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    sim.run()
    s = sim.stats
    assert s.events_generated > s.events_processed  # coalescing happened
    assert s.queue_coalesced > 0
    assert s.rounds == len(s.per_round_events)
    assert sum(s.per_round_events) == s.events_processed


def test_nonconvergence_guard():
    algo = SSSP()
    g = CSRGraph.from_tuples(3, [(0, 1, 1.0), (1, 2, 1.0)])
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.ones(2, dtype=bool))
    sim.set_source(0)
    with pytest.raises(RuntimeError):
        sim.run(max_rounds=1)


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_event_level_deletions_match_scratch(algo):
    """JetStream's delete-event cascade at event granularity equals a
    from-scratch evaluation on the reduced graph."""
    g = CSRGraph.from_edges(rmat_edges(40, 280, seed=12))
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    sim.run()

    rng = np.random.default_rng(7)
    doomed = rng.choice(g.n_edges, size=35, replace=False)
    sim.seed_deletions(doomed)
    values = sim.run()

    presence_after = np.ones(g.n_edges, dtype=bool)
    presence_after[doomed] = False
    engine = MultiVersionEngine(algo, u)
    expected = engine.evaluate_full(presence_after, 0)
    assert np.allclose(values[0], expected, equal_nan=True)


def test_event_level_streaming_sequence():
    """Full streaming at event level: alternating add/delete batches stay
    correct snapshot by snapshot."""
    algo = SSSP()
    pool = rmat_edges(36, 220, seed=9)
    scenario = synthesize_scenario(pool, n_snapshots=4, batch_pct=0.06, seed=5)
    u = scenario.unified

    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, u.presence_mask(0))
    sim.set_source(scenario.source)
    sim.run()

    engine = MultiVersionEngine(algo, u)
    for j in range(u.n_snapshots - 1):
        sim.seed_batch(scenario.addition_batch(j).edge_idx, versions=[0])
        sim.run()
        dele = scenario.deletion_batch(j).edge_idx
        if dele.size:
            sim.seed_deletions(dele)
            sim.run()
        expected = engine.evaluate_full(
            u.presence_mask(j + 1), scenario.source
        )
        assert np.allclose(sim.values[0], expected, equal_nan=True), j


def test_event_level_deletion_rejects_absent_edges():
    algo = SSSP()
    g = CSRGraph.from_tuples(3, [(0, 1), (1, 2)])
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.array([True, False]))
    sim.set_source(0)
    sim.run()
    with pytest.raises(ValueError, match="absent"):
        sim.seed_deletions(np.array([1]))


def test_event_level_deletion_generates_expensive_cascades():
    """The Fig. 2 effect is visible at event granularity too."""
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(64, 512, seed=2))
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    sim.run()
    before = sim.stats.events_generated

    rng = np.random.default_rng(1)
    doomed = rng.choice(g.n_edges, size=25, replace=False)
    invalidated = sim.seed_deletions(doomed)
    sim.run()
    del_events = sim.stats.events_generated - before

    # re-adding the same edges costs far fewer events
    before = sim.stats.events_generated
    sim.seed_batch(doomed, versions=[0])
    sim.run()
    add_events = sim.stats.events_generated - before
    assert del_events > add_events
    assert invalidated.size > 0


@pytest.mark.parametrize("order", ["fifo", "best-first"])
def test_order_policies_reach_same_fixpoint(order):
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(48, 360, seed=6))
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    values = sim.run(order=order)
    engine = MultiVersionEngine(algo, u)
    expected = engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    assert np.allclose(values[0], expected, equal_nan=True)


def test_best_first_reduces_wasted_work():
    """§3's asynchronous-reordering claim: processing the best deltas
    first wastes fewer updates on values that will be overwritten."""
    algo = SSSP()
    g = CSRGraph.from_edges(rmat_edges(256, 2048, seed=3))
    u = make_static(g)

    def run(order):
        sim = EventLevelSimulator(algo, u)
        sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
        sim.set_source(0)
        sim.run(order=order)
        s = sim.stats
        useful = s.events_processed - s.stale_events
        return s.events_generated, useful

    fifo_gen, fifo_useful = run("fifo")
    bf_gen, bf_useful = run("best-first")
    assert bf_gen <= fifo_gen  # fewer messages to convergence
    assert bf_useful <= fifo_useful


def test_run_rejects_unknown_order():
    algo = SSSP()
    g = CSRGraph.from_tuples(2, [(0, 1)])
    u = make_static(g)
    sim = EventLevelSimulator(algo, u)
    with pytest.raises(ValueError, match="order"):
        sim.run(order="random")
