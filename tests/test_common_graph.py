"""Tests for CommonGraph set algebra and the triangular grid."""

import numpy as np
import pytest

from repro.evolving.batches import BatchKind
from repro.evolving.common_graph import (
    batches_for_snapshot,
    edges_to_reach,
    range_common_mask,
)
from repro.evolving.triangular_grid import TriangularGrid


def test_batches_for_snapshot_reconstructs_presence(small_scenario):
    u = small_scenario.unified
    for k in range(u.n_snapshots):
        mask = u.common_mask.copy()
        for bid in batches_for_snapshot(u, k):
            mask |= u.batch_mask(bid)
        assert np.array_equal(mask, u.presence_mask(k))


def test_batches_for_snapshot_kinds(small_scenario):
    u = small_scenario.unified
    n = u.n_snapshots
    # snapshot 0 needs every deletion batch and no additions
    b0 = batches_for_snapshot(u, 0)
    assert all(b.kind is BatchKind.DELETION for b in b0)
    assert len(b0) == n - 1
    # the last snapshot needs every addition batch and no deletions
    blast = batches_for_snapshot(u, n - 1)
    assert all(b.kind is BatchKind.ADDITION for b in blast)
    assert len(blast) == n - 1


def test_range_common_mask_full_window_is_common(small_scenario):
    u = small_scenario.unified
    full = range_common_mask(u, 0, u.n_snapshots - 1)
    assert np.array_equal(full, u.common_mask)


def test_range_common_mask_single_snapshot_is_presence(small_scenario):
    u = small_scenario.unified
    for k in (0, 3, u.n_snapshots - 1):
        assert np.array_equal(range_common_mask(u, k, k), u.presence_mask(k))


def test_range_common_mask_is_intersection(small_scenario):
    u = small_scenario.unified
    lo, hi = 2, 5
    inter = np.ones(u.n_union_edges, dtype=bool)
    for k in range(lo, hi + 1):
        inter &= u.presence_mask(k)
    assert np.array_equal(range_common_mask(u, lo, hi), inter)


def test_range_common_mask_invalid(small_scenario):
    with pytest.raises(IndexError):
        range_common_mask(small_scenario.unified, 3, 2)
    with pytest.raises(IndexError):
        range_common_mask(small_scenario.unified, 0, 99)


def test_edges_to_reach_addition_only(small_scenario):
    u = small_scenario.unified
    common = u.common_mask
    snap = u.presence_mask(2)
    idx = edges_to_reach(u, common, snap)
    assert np.array_equal(np.flatnonzero(snap & ~common), idx)


def test_edges_to_reach_rejects_deletions(small_scenario):
    u = small_scenario.unified
    with pytest.raises(ValueError):
        edges_to_reach(u, u.presence_mask(0), u.presence_mask(1))


# -- triangular grid ---------------------------------------------------------


def test_grid_root_and_leaves(small_scenario):
    grid = TriangularGrid(small_scenario.unified)
    assert grid.root.lo == 0
    assert grid.root.hi == small_scenario.n_snapshots - 1
    leaves = grid.leaves()
    assert sorted(leaf.snapshot for leaf in leaves) == list(
        range(small_scenario.n_snapshots)
    )


def test_grid_hops_are_supersets(small_scenario):
    grid = TriangularGrid(small_scenario.unified)
    for parent, child in grid.walk_preorder():
        pmask = grid.mask_of(parent)
        cmask = grid.mask_of(child)
        assert np.all(pmask <= cmask)  # child graph is a superset
        hop = grid.hop_edges(parent, child)
        grown = pmask.copy()
        grown[hop] = True
        assert np.array_equal(grown, cmask)


def test_grid_leaf_masks_are_snapshots(small_scenario):
    u = small_scenario.unified
    grid = TriangularGrid(u)
    for leaf in grid.leaves():
        assert np.array_equal(grid.mask_of(leaf), u.presence_mask(leaf.snapshot))


def test_grid_total_hop_count_about_double_streaming(small_scenario):
    """The paper's Fig. 3 observation: WS applies roughly twice the edges
    a streaming pass does (for 8-16 snapshots, between 1.5x and 3.5x)."""
    u = small_scenario.unified
    grid = TriangularGrid(u)
    streaming_edges = sum(len(b) for b in u.addition_batches()) + sum(
        len(b) for b in u.deletion_batches()
    )
    ratio = grid.total_hop_edge_count() / streaming_edges
    assert 1.5 <= ratio <= 3.5
