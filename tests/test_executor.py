"""Unit tests for the plan executor's state mechanics."""

import numpy as np

from repro.algorithms import SSSP, get_algorithm
from repro.engines import PlanExecutor
from repro.evolving.batches import BatchId, BatchKind
from repro.schedule.plan import (
    ApplyEdges,
    CopyState,
    DeleteEdges,
    EvalFull,
    MarkSnapshot,
    Plan,
)


def manual_plan(unified, steps, n_states, initial="common"):
    plan = Plan(name="manual", n_states=n_states, initial_graph=initial)
    plan.steps.extend(steps)
    return plan


def test_copy_state_duplicates_values_and_membership(tiny_scenario):
    u = tiny_scenario.unified
    plan = manual_plan(
        u,
        [
            EvalFull(0),
            CopyState(0, 1),
            MarkSnapshot(0, 0),
        ],
        n_states=2,
    )
    executor = PlanExecutor(tiny_scenario, SSSP())
    result = executor.run(plan)
    assert 0 in result.snapshot_values


def test_multi_target_apply_writes_back_all_targets(tiny_scenario):
    u = tiny_scenario.unified
    batch = BatchId(BatchKind.ADDITION, 0)
    idx = np.flatnonzero(u.batch_mask(batch))
    plan = manual_plan(
        u,
        [
            EvalFull(0),
            CopyState(0, 1),
            CopyState(0, 2),
            ApplyEdges((1, 2), idx, (batch,)),
            MarkSnapshot(1, 0),
            MarkSnapshot(2, 1),
        ],
        n_states=3,
    )
    result = PlanExecutor(tiny_scenario, SSSP()).run(plan)
    # both targets got identical updates (identical inputs)
    assert np.allclose(
        result.values(0), result.values(1), equal_nan=True
    )


def test_single_and_multi_target_agree(tiny_scenario):
    """Applying a batch via a multi-target step equals two single steps."""
    u = tiny_scenario.unified
    algo = get_algorithm("sswp")
    batch = BatchId(BatchKind.ADDITION, 0)
    idx = np.flatnonzero(u.batch_mask(batch))

    multi = manual_plan(
        u,
        [
            EvalFull(0), CopyState(0, 1), CopyState(0, 2),
            ApplyEdges((1, 2), idx, (batch,)),
            MarkSnapshot(1, 0), MarkSnapshot(2, 1),
        ],
        n_states=3,
    )
    single = manual_plan(
        u,
        [
            EvalFull(0), CopyState(0, 1), CopyState(0, 2),
            ApplyEdges((1,), idx, (batch,)),
            ApplyEdges((2,), idx, (batch,)),
            MarkSnapshot(1, 0), MarkSnapshot(2, 1),
        ],
        n_states=3,
    )
    a = PlanExecutor(tiny_scenario, algo).run(multi)
    b = PlanExecutor(tiny_scenario, algo).run(single)
    for k in (0, 1):
        assert np.allclose(a.values(k), b.values(k), equal_nan=True)


def test_eval_full_custom_source(tiny_scenario):
    u = tiny_scenario.unified
    other = (tiny_scenario.source + 7) % tiny_scenario.n_vertices
    plan = manual_plan(
        u, [EvalFull(0, source=other), MarkSnapshot(0, 0)], n_states=1
    )
    result = PlanExecutor(tiny_scenario, SSSP()).run(plan)
    assert result.values(0)[other] == 0.0


def test_initial_graph_snapshot0(tiny_scenario):
    u = tiny_scenario.unified
    plan = manual_plan(
        u, [EvalFull(0), MarkSnapshot(0, 0)], n_states=1, initial="snapshot0"
    )
    algo = SSSP()
    result = PlanExecutor(tiny_scenario, algo).run(plan)
    from repro.engines.validation import evaluate_reference

    assert np.allclose(
        result.values(0),
        evaluate_reference(tiny_scenario, algo, 0),
        equal_nan=True,
    )


def test_deletion_steps_track_parent_rows(tiny_scenario):
    """Streaming-style plan: parents copied across CopyState, repair works
    on the copied state."""
    u = tiny_scenario.unified
    dele = BatchId(BatchKind.DELETION, 0)
    idx = np.flatnonzero(u.batch_mask(dele))
    plan = manual_plan(
        u,
        [
            EvalFull(0),
            CopyState(0, 1),
            DeleteEdges(1, idx, (dele,)),
            MarkSnapshot(1, 1),
        ],
        n_states=2,
        initial="snapshot0",
    )
    algo = SSSP()
    result = PlanExecutor(tiny_scenario, algo).run(plan)
    from repro.engines.validation import evaluate_reference

    # state 1 = snapshot 0 minus Δ-_0 = snapshot 1 minus Δ+_0; verify by
    # building the expected membership directly
    from repro.engines import MultiVersionEngine

    mask = u.presence_mask(0).copy()
    mask[idx] = False
    expected = MultiVersionEngine(algo, u).evaluate_full(
        mask, tiny_scenario.source
    )
    assert np.allclose(result.values(1), expected, equal_nan=True)
    assert len(result.deletion_stats) == 1


def test_executions_align_with_work_steps(tiny_scenario):
    from repro.schedule import boe_plan

    plan = boe_plan(tiny_scenario.unified)
    result = PlanExecutor(tiny_scenario, SSSP()).run(plan)
    work = [
        s
        for s in plan.steps
        if isinstance(s, (EvalFull, ApplyEdges, DeleteEdges))
    ]
    assert len(result.collector.executions) == len(work)
    for step, execution in zip(work, result.collector.executions):
        if isinstance(step, ApplyEdges):
            assert execution.targets == step.targets


def test_empty_batch_application_is_noop(tiny_scenario):
    """Zero-edge batches (possible at tiny scales / zero add fractions)
    execute cleanly and change nothing."""
    u = tiny_scenario.unified
    algo = SSSP()
    plan = manual_plan(
        u,
        [
            EvalFull(0),
            ApplyEdges((0,), np.empty(0, dtype=np.int64), ()),
            MarkSnapshot(0, 0),
        ],
        n_states=1,
        initial="snapshot0",
    )
    result = PlanExecutor(tiny_scenario, algo).run(plan)
    from repro.engines.validation import evaluate_reference

    assert np.allclose(
        result.values(0),
        evaluate_reference(tiny_scenario, algo, 0),
        equal_nan=True,
    )


def test_deletions_only_scenario_runs_all_workflows():
    """add_fraction=0 produces empty addition batches everywhere; every
    workflow must handle them."""
    from repro.engines.validation import validate_workflow
    from repro.evolving import synthesize_scenario
    from repro.graph.generators import rmat_edges
    from repro.schedule import WORKFLOWS, plan_for

    pool = rmat_edges(48, 360, seed=5)
    scenario = synthesize_scenario(
        pool, n_snapshots=4, batch_pct=0.05, add_fraction=0.0, seed=2
    )
    algo = get_algorithm("sswp")
    for wf in sorted(WORKFLOWS):
        result = PlanExecutor(scenario, algo).run(plan_for(wf, scenario.unified))
        validate_workflow(scenario, algo, result)
