"""Tests for splitting event logs into CommonGraph-valid windows."""

import numpy as np

from repro.evolving.builder import EdgeEvent
from repro.evolving.windows_split import change_steps, split_boundaries
from repro.graph.edges import EdgeList


def key_of(src, dst, n):
    return src * n + dst


def test_change_steps_basic():
    events = [
        EdgeEvent(0.5, 0, 1, add=True),    # flips at step 0
        EdgeEvent(2.5, 0, 1, add=False),   # flips at step 2
        EdgeEvent(1.5, 2, 3, add=True),    # flips at step 1
    ]
    boundaries = np.array([1.0, 2.0, 3.0])
    steps = change_steps(events, boundaries, n_vertices=4)
    assert steps[key_of(0, 1, 4)] == [0, 2]
    assert steps[key_of(2, 3, 4)] == [1]


def test_change_steps_ignores_net_noops():
    events = [
        EdgeEvent(0.2, 0, 1, add=True),
        EdgeEvent(0.8, 0, 1, add=False),  # same transition: net no-op
    ]
    steps = change_steps(events, np.array([1.0]), n_vertices=2)
    assert steps == {}


def test_change_steps_respects_initial_presence():
    events = [EdgeEvent(0.5, 0, 1, add=False)]
    n = 2
    steps = change_steps(
        events, np.array([1.0]), n, initially_present={key_of(0, 1, n)}
    )
    assert steps[key_of(0, 1, n)] == [0]
    # without initial presence a 'remove' of an absent edge is a no-op
    assert change_steps(events, np.array([1.0]), n) == {}


def test_split_single_window_when_valid():
    events = [
        EdgeEvent(0.5, 0, 1, add=True),
        EdgeEvent(1.5, 2, 3, add=True),
    ]
    boundaries = np.array([1.0, 2.0])
    assert split_boundaries(events, boundaries, 4) == [(0, 2)]


def test_split_on_double_change():
    events = [
        EdgeEvent(0.5, 0, 1, add=True),    # step 0
        EdgeEvent(2.5, 0, 1, add=False),   # step 2 -> must split before
    ]
    boundaries = np.array([1.0, 2.0, 3.0])
    windows = split_boundaries(events, boundaries, 4)
    assert windows == [(0, 2), (2, 3)]
    # windows cover the range and chain at shared snapshots
    assert windows[0][1] == windows[1][0]


def test_split_windows_are_buildable():
    """Every produced window passes the builder's validity check."""
    rng = np.random.default_rng(4)
    n = 24
    base = EdgeList.from_tuples(
        n, [(i, (i + 1) % n, 1.0) for i in range(n)]
    )
    events = []
    for t in range(40):
        s, d = int(rng.integers(n)), int(rng.integers(n))
        if s == d:
            continue
        events.append(EdgeEvent(float(t), s, d, add=bool(rng.random() < 0.6)))
    boundaries = np.linspace(0, 40, 9)[1:]
    initially = set(base.keys.tolist())
    windows = split_boundaries(events, boundaries, n, initially)
    assert windows[0][0] == 0
    assert windows[-1][1] == len(boundaries)
    # adjacent windows chain at a shared snapshot
    for (___, a_hi), (b_lo, __) in zip(windows, windows[1:]):
        assert a_hi == b_lo
    # the defining invariant: no edge flips twice inside one window —
    # window (lo, hi) covers transitions lo .. hi-1
    flips = change_steps(events, boundaries, n, initially)
    for key, steps in flips.items():
        for lo, hi in windows:
            inside = [j for j in steps if lo <= j < hi]
            assert len(inside) <= 1, (key, (lo, hi))
