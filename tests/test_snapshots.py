"""Tests for evolving-scenario synthesis (paper §5.1 workload generator)."""

import numpy as np
import pytest

from repro.evolving.snapshots import batch_sizes, synthesize_scenario
from repro.graph.generators import rmat_edges


def test_scenario_shape(small_scenario):
    assert small_scenario.n_snapshots == 8
    assert small_scenario.n_vertices == 256
    assert small_scenario.unified.n_union_edges == 2048


def test_batches_partition_the_tagged_edges(small_scenario):
    u = small_scenario.unified
    n_add = sum(len(b) for b in u.addition_batches())
    n_del = sum(len(b) for b in u.deletion_batches())
    n_common = int(u.common_mask.sum())
    assert n_add + n_del + n_common == u.n_union_edges


def test_batch_sizes_match_percentage(small_scenario):
    u = small_scenario.unified
    m0 = small_scenario.metadata["initial_edges"]
    per_transition = 0.02 * m0
    for b in u.addition_batches():
        assert abs(len(b) - per_transition / 2) <= 2
    for b in u.deletion_batches():
        assert abs(len(b) - per_transition / 2) <= 2


def test_snapshot0_contains_common_and_future_deletions(small_scenario):
    u = small_scenario.unified
    mask0 = u.presence_mask(0)
    assert np.all(mask0[u.common_mask])
    assert np.all(mask0[u.del_step >= 0])
    assert not np.any(mask0[u.add_step >= 0])


def test_last_snapshot_contains_common_and_all_additions(small_scenario):
    u = small_scenario.unified
    last = u.presence_mask(u.n_snapshots - 1)
    assert np.all(last[u.common_mask])
    assert np.all(last[u.add_step >= 0])
    assert not np.any(last[u.del_step >= 0])


def test_common_graph_is_intersection_of_snapshots(small_scenario):
    u = small_scenario.unified
    inter = np.ones(u.n_union_edges, dtype=bool)
    for k in range(u.n_snapshots):
        inter &= u.presence_mask(k)
    assert np.array_equal(inter, u.common_mask)


def test_union_is_union_of_snapshots(small_scenario):
    u = small_scenario.unified
    union = np.zeros(u.n_union_edges, dtype=bool)
    for k in range(u.n_snapshots):
        union |= u.presence_mask(k)
    assert bool(union.all())


def test_transition_applies_exactly_its_batches(small_scenario):
    u = small_scenario.unified
    for j in range(u.n_snapshots - 1):
        before = u.presence_mask(j)
        after = u.presence_mask(j + 1)
        gained = np.flatnonzero(after & ~before)
        lost = np.flatnonzero(before & ~after)
        assert np.array_equal(gained, np.flatnonzero(u.add_step == j))
        assert np.array_equal(lost, np.flatnonzero(u.del_step == j))


def test_source_has_outgoing_common_edges(small_scenario):
    gc = small_scenario.common_graph()
    assert int(gc.out_degree(small_scenario.source)) > 0


def test_determinism():
    pool = rmat_edges(64, 512, seed=1)
    a = synthesize_scenario(pool, n_snapshots=4, seed=2)
    b = synthesize_scenario(pool, n_snapshots=4, seed=2)
    assert np.array_equal(a.unified.add_step, b.unified.add_step)
    assert np.array_equal(a.unified.del_step, b.unified.del_step)


def test_different_seed_changes_batches():
    pool = rmat_edges(64, 512, seed=1)
    a = synthesize_scenario(pool, n_snapshots=4, seed=2)
    b = synthesize_scenario(pool, n_snapshots=4, seed=3)
    assert not np.array_equal(a.unified.add_step, b.unified.add_step)


def test_rejects_bad_parameters():
    pool = rmat_edges(32, 128, seed=0)
    with pytest.raises(ValueError):
        synthesize_scenario(pool, n_snapshots=0)
    with pytest.raises(ValueError):
        synthesize_scenario(pool, batch_pct=0.0)
    with pytest.raises(ValueError):
        synthesize_scenario(pool, add_fraction=1.5)
    with pytest.raises(ValueError):
        synthesize_scenario(pool, imbalance=0.5)


def test_single_snapshot_scenario_is_static():
    # degenerate serving case: one snapshot, zero transitions, every
    # pool edge lives in the (single) snapshot's graph
    pool = rmat_edges(32, 128, seed=0)
    scenario = synthesize_scenario(pool, n_snapshots=1)
    assert scenario.n_snapshots == 1
    assert scenario.unified.presence_mask(0).all()


def test_rejects_duplicate_pool():
    pool = rmat_edges(32, 128, seed=0)
    dup = pool.concat(pool.select(np.array([0])))
    with pytest.raises(ValueError):
        synthesize_scenario(dup)


def test_add_fraction_zero_means_deletions_only():
    pool = rmat_edges(64, 512, seed=1)
    s = synthesize_scenario(pool, n_snapshots=4, add_fraction=0.0, seed=2)
    assert not np.any(s.unified.add_step >= 0)
    assert np.any(s.unified.del_step >= 0)


# -- batch size splitting ----------------------------------------------------


def test_batch_sizes_sum_exactly(rng):
    sizes = batch_sizes(1000, 7, 1.0, rng)
    assert int(sizes.sum()) == 1000


def test_batch_sizes_balanced(rng):
    sizes = batch_sizes(700, 7, 1.0, rng)
    assert sizes.max() - sizes.min() <= 1


def test_batch_sizes_imbalance(rng):
    sizes = batch_sizes(10000, 8, 4.0, rng)
    assert int(sizes.sum()) == 10000
    assert sizes.max() / max(sizes.min(), 1) > 1.5


def test_batch_sizes_empty(rng):
    assert batch_sizes(100, 0, 1.0, rng).size == 0


def test_imbalanced_scenario_valid():
    pool = rmat_edges(128, 1024, seed=4)
    s = synthesize_scenario(pool, n_snapshots=6, imbalance=4.0, seed=9)
    u = s.unified
    adds = [len(b) for b in u.addition_batches()]
    assert sum(adds) > 0
    # every snapshot still well-formed
    for k in range(6):
        assert u.snapshot_graph(k).n_edges > 0
