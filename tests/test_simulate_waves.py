"""Unit tests for wave construction and the simulate entry point."""

import pytest

from repro.accel import SimCounters, SimReport, mega_config
from repro.accel.memory import MemorySystem
from repro.accel.simulate import build_waves, config_for_scenario, simulate_plan
from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.schedule import (
    boe_plan,
    direct_hop_plan,
    streaming_plan,
    work_sharing_plan,
)

from repro.workloads import load_scenario


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("PK", "tiny", n_snapshots=6)


def run_and_waves(scenario, plan, concurrent, capacity_scale=1.0):
    result = PlanExecutor(scenario, get_algorithm("sssp")).run(plan)
    memory = MemorySystem(
        mega_config(capacity_scale=capacity_scale), scenario.unified.graph
    )
    return build_waves(plan, result.collector.executions, memory, concurrent)


def test_jetstream_waves_are_sequential(scenario):
    plan = streaming_plan(scenario.unified)
    waves = run_and_waves(scenario, plan, concurrent=False)
    assert all(len(w.executions) == 1 for w in waves)
    # eval + (add + del) per transition
    assert len(waves) == 1 + 2 * (scenario.n_snapshots - 1)


def test_boe_waves_pair_add_and_del(scenario):
    plan = boe_plan(scenario.unified)
    waves = run_and_waves(scenario, plan, concurrent=True)
    # one eval wave + one wave per Algorithm 1 stage
    stage_waves = waves[1:]
    assert len(stage_waves) == scenario.n_snapshots - 1
    assert all(len(w.executions) == 2 for w in stage_waves)


def test_direct_hop_waves_group_chain_positions(scenario):
    plan = direct_hop_plan(scenario.unified)
    waves = run_and_waves(scenario, plan, concurrent=True)
    # position 1 of every snapshot chain shares the first staged wave
    first_staged = waves[1]
    assert len(first_staged.executions) > 1


def test_work_sharing_waves_pair_siblings(scenario):
    plan = work_sharing_plan(scenario.unified)
    waves = run_and_waves(scenario, plan, concurrent=True)
    staged = [w for w in waves if len(w.executions) == 2]
    assert staged  # sibling hops share waves position by position


def test_concurrent_false_splits_everything(scenario):
    plan = boe_plan(scenario.unified)
    waves = run_and_waves(scenario, plan, concurrent=False)
    assert all(len(w.executions) == 1 for w in waves)


def test_wave_partition_counts_total_targets(scenario):
    plan = boe_plan(scenario.unified)
    # shrink capacity so multi-version waves partition
    scale = scenario.n_vertices / 4_000_000
    waves = run_and_waves(scenario, plan, True, capacity_scale=scale)
    multi = [
        w
        for w in waves
        if sum(len(e.targets) for e in w.executions) > 4
    ]
    assert multi
    assert any(w.partition.n_partitions > 1 for w in multi)


def test_config_for_scenario_uses_metadata(scenario):
    cfg = config_for_scenario(scenario, mega_config())
    assert cfg.capacity_scale == pytest.approx(
        scenario.metadata["capacity_scale"]
    )
    explicit = mega_config(capacity_scale=0.5)
    assert config_for_scenario(scenario, explicit).capacity_scale == 0.5


def test_simulate_plan_returns_consistent_report(scenario):
    algo = get_algorithm("bfs")
    plan = boe_plan(scenario.unified)
    report, result = simulate_plan(
        scenario, algo, plan, mega_config(), concurrent=True
    )
    assert isinstance(report, SimReport)
    assert isinstance(report.counters, SimCounters)
    assert report.workflow == "boe"
    assert len(result.snapshot_values) == scenario.n_snapshots
    assert report.cycles >= report.update_cycles > 0
    assert len(report.round_series) == len(result.collector.executions)


def test_simulate_plan_validate_flag(scenario):
    algo = get_algorithm("sssp")
    plan = boe_plan(scenario.unified)
    # must not raise with validation on
    simulate_plan(
        scenario, algo, plan, mega_config(), concurrent=True, validate=True
    )


def test_sim_counters_merge():
    a = SimCounters(events_popped=1, dram_bytes=10.0)
    b = SimCounters(events_popped=2, dram_bytes=5.0, rounds=3)
    a.merge(b)
    assert a.events_popped == 3
    assert a.dram_bytes == 15.0
    assert a.rounds == 3


def test_sim_report_speedup_math():
    fast = SimReport("x", "boe", cycles=100.0, counters=SimCounters())
    slow = SimReport("y", "stream", cycles=400.0, counters=SimCounters())
    assert fast.speedup_over(slow) == pytest.approx(4.0)
    assert slow.speedup_over(fast) == pytest.approx(0.25)


def test_sim_report_update_excludes_full_phase():
    r = SimReport(
        "x",
        "boe",
        cycles=100.0,
        counters=SimCounters(),
        phase_cycles={"full": 30.0, "add": 70.0},
    )
    assert r.initial_eval_cycles == 30.0
    assert r.update_cycles == 70.0
    assert r.update_time_ms == pytest.approx(70e-6)


def test_sim_report_detailed_and_dict(scenario):
    from repro.accel import MegaSimulator

    report = MegaSimulator("boe").run(scenario, get_algorithm("sssp"))
    text = report.detailed()
    assert "DRAM" in text and "rounds" in text and "phase cycles" in text
    payload = report.to_dict()
    assert payload["workflow"] == "boe"
    assert payload["counters"]["events_generated"] > 0
    assert payload["update_cycles"] <= payload["cycles"]


def test_wave_cycles_cover_total(scenario):
    from repro.accel import JetStreamSimulator

    report = JetStreamSimulator().run(scenario, get_algorithm("sssp"))
    assert report.wave_cycles
    total = sum(c for __, c in report.wave_cycles)
    assert total == pytest.approx(report.cycles, rel=1e-9)
