"""Cross-model consistency: round engine vs exact event-level datapath.

Two independently-written simulators execute the same workload; beyond the
value equality checked elsewhere, their *activity* should agree: the
per-round event waves have the same shape, the useful-event totals match
within coalescing slack, and the analytical PE-throughput estimate brackets
the event-level cluster's measured makespan.
"""

import numpy as np

from repro.accel.eventsim import EventLevelSimulator
from repro.algorithms import SSSP
from repro.engines import MultiVersionEngine, TraceCollector
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


def setup(seed=3, n=96, m=700):
    g = CSRGraph.from_edges(rmat_edges(n, m, seed=seed))
    none = np.full(g.n_edges, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    presence = np.ones(g.n_edges, dtype=bool)

    collector = TraceCollector(g.n_edges, n_vertices=n)
    engine = MultiVersionEngine(SSSP(), u, collector=collector)
    engine.evaluate_full(presence, 0)

    sim = EventLevelSimulator(SSSP(), u)
    sim.set_graph(0, presence)
    sim.set_source(0)
    sim.run()
    return collector.executions[0], sim


def test_round_counts_agree():
    execution, sim = setup()
    # the queue drains in the same number of waves the round engine takes
    # (first engine "round" = the seeded source, like the first queue pop)
    assert abs(execution.n_rounds - sim.stats.rounds) <= 1


def test_useful_event_totals_agree():
    execution, sim = setup()
    useful = sim.stats.events_processed - sim.stats.stale_events
    # engine pops exactly the changed vertices; the event queue also pops
    # deltas that lost to cross-round staleness, so useful <= popped-total
    # but the two agree within a small factor
    popped = execution.events_popped + 1  # + the seeded source event
    assert useful <= popped
    assert useful >= 0.5 * popped


def test_generated_message_totals_agree():
    execution, sim = setup()
    # every improving pop emits its out-edges in both models
    assert sim.stats.events_generated >= execution.events_generated * 0.9
    assert sim.stats.events_generated <= execution.events_generated * 1.5


def test_pe_estimate_brackets_event_level_makespan():
    execution, sim = setup()
    n_pes, gen_units = sim.pes.n_pes, sim.pes.gen_units
    analytic = sum(
        r.events_popped / n_pes + r.events_generated / (n_pes * gen_units)
        for r in execution.rounds
    )
    measured = sim.stats.pe_cycles
    # greedy scheduling with whale vertices can exceed the fluid estimate,
    # but the two stay within a small constant factor
    assert 0.3 * analytic <= measured <= 6.0 * analytic


def test_round_shapes_correlate():
    execution, sim = setup()
    a = np.array(execution.events_per_round()[: sim.stats.rounds], dtype=float)
    b = np.array(sim.stats.per_round_events[: a.size], dtype=float)
    if a.size >= 3 and a.std() > 0 and b.std() > 0:
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.5
