"""Tests for witness-path extraction and verification."""

import numpy as np
import pytest

from repro.algorithms import all_algorithms, get_algorithm
from repro.algorithms.extensions import MinLabel, symmetrize
from repro.analysis.paths import extract_path, verify_path, witness_paths
from repro.engines import MultiVersionEngine
from repro.graph.generators import rmat_edges
from repro.evolving import synthesize_scenario
from repro.workloads import load_scenario


@pytest.fixture(scope="module")
def scenario():
    return load_scenario("PK", "tiny", n_snapshots=6)


def test_requires_parent_tracking(scenario):
    engine = MultiVersionEngine(get_algorithm("sssp"), scenario.unified)
    with pytest.raises(ValueError, match="track_parents"):
        extract_path(engine, 3)


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_witness_paths_verify(scenario, algo):
    """Every reached vertex's extracted path independently reproduces its
    value — for all five Table 1 algorithms."""
    engine = MultiVersionEngine(algo, scenario.unified, track_parents=True)
    values = engine.evaluate_full(
        scenario.unified.presence_mask(2), scenario.source, parent_row=0
    )
    reached = np.flatnonzero(algo.reached(values[None, :])[0])
    sample = reached[:: max(1, reached.size // 12)]
    for v in sample:
        path = extract_path(engine, int(v))
        assert path[0] == scenario.source or path == [int(v)]
        assert path[-1] == int(v)
        assert verify_path(scenario, algo, 2, path, float(values[v]))


def test_witness_paths_api(scenario):
    algo = get_algorithm("sssp")
    reachable = witness_paths(scenario, algo, 0, [scenario.source, 1, 2])
    assert reachable[scenario.source] == [scenario.source]
    for v, path in reachable.items():
        if path:
            assert path[-1] == v


def test_unreached_vertex_has_empty_path():
    pool = rmat_edges(32, 120, seed=2)
    scenario = synthesize_scenario(pool, n_snapshots=3, batch_pct=0.05, seed=1)
    algo = get_algorithm("sssp")
    engine = MultiVersionEngine(algo, scenario.unified, track_parents=True)
    values = engine.evaluate_full(
        scenario.unified.presence_mask(0), scenario.source, parent_row=0
    )
    unreached = np.flatnonzero(~algo.reached(values[None, :])[0])
    if unreached.size == 0:
        pytest.skip("everything reachable for this seed")
    paths = witness_paths(scenario, algo, 0, [int(unreached[0])])
    assert paths[int(unreached[0])] == []


def test_verify_rejects_fabricated_paths(scenario):
    algo = get_algorithm("sssp")
    # nonexistent edge sequence
    assert not verify_path(scenario, algo, 0, [scenario.source, 99999 % scenario.n_vertices], 1.0)
    # right path shape, wrong value
    paths = witness_paths(scenario, algo, 0, [scenario.source])
    assert not verify_path(scenario, algo, 0, paths[scenario.source], -5.0)
    assert not verify_path(scenario, algo, 0, [], 0.0)


def test_minlabel_witness_paths():
    """Label-propagation paths root at the component representative."""
    pool = symmetrize(rmat_edges(40, 140, seed=4))
    scenario = synthesize_scenario(pool, n_snapshots=3, batch_pct=0.04, seed=2)
    algo = MinLabel()
    engine = MultiVersionEngine(algo, scenario.unified, track_parents=True)
    values = engine.evaluate_full(
        scenario.unified.presence_mask(1), scenario.source, parent_row=0
    )
    for v in range(0, scenario.n_vertices, 7):
        path = extract_path(engine, v)
        assert path[-1] == v
        assert values[path[0]] == path[0]  # roots carry their own label
        assert verify_path(scenario, algo, 1, path, float(values[v]))