"""Unit tests for vertex-range partitioning."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.graph.partition import VertexPartitioner


@pytest.fixture
def graph():
    return CSRGraph.from_edges(rmat_edges(256, 2048, seed=4))


def test_ranges_cover_all_vertices(graph):
    p = VertexPartitioner(graph.indptr, 4)
    lo0, __ = p.vertex_range(0)
    assert lo0 == 0
    __, hi_last = p.vertex_range(p.n_partitions - 1)
    assert hi_last == graph.n_vertices
    assert int(p.sizes().sum()) == graph.n_vertices


def test_ranges_are_disjoint_and_ordered(graph):
    p = VertexPartitioner(graph.indptr, 5)
    prev_hi = 0
    for i in range(p.n_partitions):
        lo, hi = p.vertex_range(i)
        assert lo == prev_hi
        assert hi >= lo
        prev_hi = hi


def test_partition_of_consistent_with_ranges(graph):
    p = VertexPartitioner(graph.indptr, 4)
    for i in range(p.n_partitions):
        lo, hi = p.vertex_range(i)
        if hi > lo:
            ids = p.partition_of(np.arange(lo, hi))
            assert np.all(ids == i)


def test_edge_balance(graph):
    """Each partition should hold a comparable share of edges."""
    p = VertexPartitioner(graph.indptr, 4)
    for i in range(4):
        lo, hi = p.vertex_range(i)
        edges = int(graph.indptr[hi] - graph.indptr[lo])
        # power-law graphs cannot be split perfectly; allow 2.5x of fair share
        assert edges <= 2.5 * graph.n_edges / 4 + graph.n_edges * 0.05


def test_single_partition(graph):
    p = VertexPartitioner(graph.indptr, 1)
    assert p.n_partitions == 1
    assert p.vertex_range(0) == (0, graph.n_vertices)
    assert p.cross_fraction(graph.src_of_edge, graph.dst) == 0.0


def test_more_partitions_than_vertices():
    g = CSRGraph.from_tuples(3, [(0, 1), (1, 2)])
    p = VertexPartitioner(g.indptr, 10)
    assert p.n_partitions <= 3


def test_invalid_partition_count(graph):
    with pytest.raises(ValueError):
        VertexPartitioner(graph.indptr, 0)


def test_partition_index_out_of_range(graph):
    p = VertexPartitioner(graph.indptr, 2)
    with pytest.raises(IndexError):
        p.vertex_range(2)


def test_partition_of_rejects_out_of_range(graph):
    p = VertexPartitioner(graph.indptr, 4)
    with pytest.raises(ValueError, match=r"outside \[0, 256\)"):
        p.partition_of(np.array([0, 5, 256]))
    with pytest.raises(ValueError, match="-1"):
        p.partition_of(-1)
    with pytest.raises(ValueError):
        p.partition_of(np.array([999, 1000]))


def test_partition_of_scalar_in_scalar_out(graph):
    p = VertexPartitioner(graph.indptr, 4)
    got = p.partition_of(7)
    assert isinstance(got, int)
    lo, hi = p.vertex_range(got)
    assert lo <= 7 < hi


def test_partition_of_empty_array(graph):
    p = VertexPartitioner(graph.indptr, 4)
    out = p.partition_of(np.empty(0, dtype=np.int64))
    assert out.size == 0


def test_cross_fraction_bounds(graph):
    p = VertexPartitioner(graph.indptr, 4)
    f = p.cross_fraction(graph.src_of_edge, graph.dst)
    assert 0.0 <= f <= 1.0
    # with 4 partitions of a random-ish graph, some edges must cross
    assert f > 0.0


def test_cross_fraction_empty():
    g = CSRGraph.from_tuples(3, [(0, 1)])
    p = VertexPartitioner(g.indptr, 2)
    empty = np.empty(0, dtype=np.int64)
    assert p.cross_fraction(empty, empty) == 0.0
