"""Tests for the property-tracking analytics."""

import math

import numpy as np
import pytest

from repro.analysis import (
    PropertySeries,
    snapshot_churn,
    track_mean_value,
    track_reach,
    track_statistic,
)
from repro.algorithms import get_algorithm
from repro.core import EvolvingGraphEngine


@pytest.fixture(scope="module")
def result_and_algo():
    from repro.workloads import load_scenario

    scenario = load_scenario("PK", "tiny", n_snapshots=6)
    algo = get_algorithm("sssp")
    engine = EvolvingGraphEngine(scenario, algo)
    return engine.evaluate("boe"), algo, scenario


def test_track_statistic_covers_all_snapshots(result_and_algo):
    result, algo, scenario = result_and_algo
    series = track_statistic(result, lambda v: float(np.isfinite(v).sum()))
    assert series.snapshots == list(range(scenario.n_snapshots))
    assert len(series) == scenario.n_snapshots


def test_track_reach_counts_reached(result_and_algo):
    result, algo, scenario = result_and_algo
    series = track_reach(result, algo)
    for k, count in zip(series.snapshots, series.values):
        expected = float(algo.reached(result.values(k)).sum())
        assert count == expected
        assert 0 < count <= scenario.n_vertices


def test_track_mean_value_finite(result_and_algo):
    result, algo, __ = result_and_algo
    series = track_mean_value(result, algo)
    assert all(math.isfinite(v) for v in series.values)
    assert all(v > 0 for v in series.values)


def test_churn_is_small_fraction(result_and_algo):
    """Adjacent snapshots' solutions differ on few vertices — the Fig. 5
    similarity BOE exploits."""
    result, __, scenario = result_and_algo
    churn = snapshot_churn(result)
    assert len(churn) == scenario.n_snapshots - 1
    assert max(churn.values) < 0.5 * scenario.n_vertices


def test_series_delta_and_extrema():
    s = PropertySeries("x", [0, 1, 2, 3], [1.0, 4.0, 2.0, 2.0])
    assert s.delta() == [3.0, -2.0, 0.0]
    assert s.argmax() == 1
    assert s.argmin() == 0


def test_sparkline_shape():
    s = PropertySeries("x", [0, 1, 2], [0.0, 5.0, 10.0])
    line = s.sparkline()
    assert len(line) == 3
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_handles_nan_and_flat():
    s = PropertySeries("x", [0, 1], [float("nan"), float("inf")])
    assert s.sparkline() == "··"
    flat = PropertySeries("x", [0, 1], [3.0, 3.0])
    assert flat.sparkline() == "▁▁"


def test_track_works_on_minlabel(result_and_algo):
    """Component counts per snapshot — the §1 'number of clusters' ask."""
    import numpy as np

    from repro.algorithms import MinLabel
    from repro.core import EvolvingGraphEngine

    __, ___, scenario = result_and_algo
    engine = EvolvingGraphEngine(scenario, MinLabel())
    result = engine.evaluate("boe", validate=True)
    series = track_statistic(
        result, lambda v: float(np.unique(v).size), name="clusters"
    )
    assert all(1 <= c <= scenario.n_vertices for c in series.values)
