"""The public API surface stays importable and coherent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.accel",
    "repro.algorithms",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.engines",
    "repro.evolving",
    "repro.experiments",
    "repro.graph",
    "repro.metrics",
    "repro.resilience",
    "repro.schedule",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), name


def test_every_module_has_docstring():
    import pathlib

    root = pathlib.Path(__file__).parent.parent / "src" / "repro"
    for path in sorted(root.rglob("*.py")):
        text = path.read_text()
        if not text.strip():
            continue
        assert text.lstrip().startswith('"""'), path


def test_version_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_no_circular_import_surprises():
    # importing the deepest consumers first must work in a fresh process
    import subprocess
    import sys

    code = (
        "import repro.resilience, repro.experiments, repro.core, "
        "repro.accel; print('ok')"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
