"""Smoke tests for the experiment drivers (tiny scale, shape only).

The full assertions live in benchmarks/; these verify every driver runs,
produces well-formed rows, and renders.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.experiments.runner import ExperimentResult

FAST = ["fig3", "table5", "fig16", "fig21"]


def test_registry_covers_every_table_and_figure():
    paper = {
        "fig2", "fig3", "fig4", "fig5", "fig10", "table4", "fig14",
        "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
        "table5",
    }
    assert paper <= set(ALL_EXPERIMENTS)
    # extensions beyond the paper's figures
    assert {"ext-pe-sweep", "summary"} <= set(ALL_EXPERIMENTS)


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("fig99")


@pytest.mark.parametrize("name", FAST)
def test_driver_runs_and_renders(name):
    result = run_experiment(name, "tiny")
    assert isinstance(result, ExperimentResult)
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    text = result.format_table()
    assert result.name in text
    for header in result.headers:
        assert header in text


def test_result_column_access():
    result = run_experiment("fig3", "tiny")
    assert len(result.column("graph")) == len(result.rows)
    with pytest.raises(ValueError):
        result.column("nonexistent")


def test_add_and_notes():
    r = ExperimentResult("X", "t", ["a", "b"])
    r.add(1, 2.5)
    r.notes.append("hello")
    rendered = r.format_table()
    assert "hello" in rendered
    assert "2.500" in rendered


def test_table4_tiny_shape():
    result = run_experiment("table4", "tiny")
    assert len(result.rows) == 30
    boe = result.column("boe_speedup")
    ws = result.column("work-sharing_speedup")
    assert all(b > w for b, w in zip(boe, ws))


def test_ext_pe_sweep_reproduces_claim():
    """§5.2: more PEs alone do not help; scaling bandwidth with them does."""
    result = run_experiment("ext-pe-sweep", "tiny")
    pes_only = dict(zip(result.column("n_pes"), result.column("pes_only_cycles")))
    balanced = dict(zip(result.column("n_pes"), result.column("balanced_cycles")))
    # compute-only scaling: within a few percent from 8 to 32 PEs
    assert abs(pes_only[32] - pes_only[8]) / pes_only[8] < 0.10
    # balanced scaling clearly improves
    assert balanced[32] < 0.85 * balanced[8]


def test_summary_runs(capsys=None):
    result = run_experiment("summary", "tiny")
    experiments = set(result.column("experiment"))
    assert {"Fig. 2", "Fig. 3", "Table 4", "Fig. 14", "Table 5"} <= experiments
    assert all(len(r) == 5 for r in result.rows)
    assert set(result.column("in_band")) <= {"yes", "NO", "-"}
    # the scale-calibration caveat is surfaced away from scale=small
    assert any("calibrated at scale=small" in n for n in result.notes)


def test_export_formats():
    result = run_experiment("fig3", "tiny")
    import json

    payload = json.loads(result.to_json())
    assert payload["headers"] == result.headers
    csv_text = result.to_csv()
    assert csv_text.splitlines()[0] == ",".join(result.headers)
    records = result.to_records()
    assert records[0]["graph"] == result.rows[0][0]


def test_runner_cache_distinguishes_parameters():
    """Scenario variants with different batch sizes must not collide in
    the runner's simulation cache."""
    from repro.experiments.runner import scenario_cache, simulate_all_workflows

    a = scenario_cache("PK", "tiny", batch_pct=0.005)
    b = scenario_cache("PK", "tiny", batch_pct=0.02)
    assert a is not b
    ra = simulate_all_workflows(a, "BFS")["jetstream"]
    rb = simulate_all_workflows(b, "BFS")["jetstream"]
    assert ra.counters.events_generated != rb.counters.events_generated


def test_scenario_cache_reuses_instances():
    from repro.experiments.runner import scenario_cache

    a = scenario_cache("LJ", "tiny", n_snapshots=5)
    b = scenario_cache("LJ", "tiny", n_snapshots=5)
    assert a is b
