"""Unit tests for the CSR graph and the edge-gather kernel."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, gather_out_edges
from repro.graph.edges import EdgeList
from repro.graph.generators import rmat_edges


@pytest.fixture
def diamond():
    #   0 -> 1 -> 3, 0 -> 2 -> 3
    return CSRGraph.from_tuples(
        4, [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)]
    )


def test_basic_shape(diamond):
    assert diamond.n_vertices == 4
    assert diamond.n_edges == 4
    assert diamond.indptr.tolist() == [0, 2, 3, 4, 4]


def test_neighbors_and_degree(diamond):
    assert diamond.neighbors(0).tolist() == [1, 2]
    assert diamond.neighbors(3).tolist() == []
    assert int(diamond.out_degree(0)) == 2
    assert int(diamond.out_degree(3)) == 0


def test_has_edge(diamond):
    assert diamond.has_edge(0, 1)
    assert diamond.has_edge(2, 3)
    assert not diamond.has_edge(1, 0)
    assert not diamond.has_edge(3, 3)


def test_src_of_edge(diamond):
    assert diamond.src_of_edge.tolist() == [0, 0, 1, 2]


def test_src_of_edge_is_lazy(diamond):
    """Materialized only on first access, then cached."""
    assert diamond._src_of_edge is None
    first = diamond.src_of_edge
    assert diamond._src_of_edge is not None
    assert diamond.src_of_edge is first  # cached, not recomputed


def test_init_no_copy_fast_path():
    """Already-conforming arrays are adopted without a copy.

    The service's shared-memory scenario plane depends on this: a worker
    attaching to a published segment wraps the raw buffers in a CSRGraph
    and must not duplicate them.
    """
    indptr = np.array([0, 2, 3, 4, 4], dtype=np.int64)
    dst = np.array([1, 2, 3, 3], dtype=np.int64)
    wt = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float64)
    g = CSRGraph(4, indptr, dst, wt)
    assert g.indptr is indptr and g.dst is dst and g.wt is wt


def test_init_readonly_inputs_stay_readonly():
    """Construction never writes to the edge arrays (shm segments are
    published read-only)."""
    indptr = np.array([0, 1, 2], dtype=np.int64)
    dst = np.array([1, 0], dtype=np.int64)
    wt = np.array([1.0, 1.0], dtype=np.float64)
    for a in (indptr, dst, wt):
        a.flags.writeable = False
    g = CSRGraph(2, indptr, dst, wt)
    assert not g.dst.flags.writeable
    assert g.neighbors(0).tolist() == [1]
    assert g.src_of_edge.tolist() == [0, 1]


def test_init_copies_on_dtype_mismatch():
    """Non-conforming dtypes still convert (with a copy) — correctness
    first, the fast path is opt-in by passing canonical dtypes."""
    indptr = np.array([0, 1, 1], dtype=np.int32)
    dst = np.array([1], dtype=np.int32)
    wt = np.array([1.5], dtype=np.float32)
    g = CSRGraph(2, indptr, dst, wt)
    assert g.indptr.dtype == np.int64
    assert g.dst.dtype == np.int64
    assert g.wt.dtype == np.float64
    assert g.wt[0] == 1.5


def test_reverse_transposes(diamond):
    rev = diamond.reverse()
    assert rev.neighbors(3).tolist() == [1, 2]
    assert rev.neighbors(1).tolist() == [0]
    assert rev.n_edges == diamond.n_edges
    # reversing twice restores the original edge set
    back = rev.reverse()
    assert sorted(back.to_edge_list().as_tuples()) == sorted(
        diamond.to_edge_list().as_tuples()
    )


def test_to_edge_list_roundtrip(diamond):
    e = diamond.to_edge_list()
    again = CSRGraph.from_edges(e)
    assert again.indptr.tolist() == diamond.indptr.tolist()
    assert again.dst.tolist() == diamond.dst.tolist()


def test_from_edges_unsorted_input():
    e = EdgeList.from_tuples(3, [(2, 0, 5.0), (0, 2, 1.0), (0, 1, 2.0)])
    g = CSRGraph.from_edges(e)
    assert g.neighbors(0).tolist() == [1, 2]
    assert g.wt[g.indptr[0]] == 2.0  # (0,1) sorts before (0,2)


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRGraph(2, np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CSRGraph(2, np.array([0, 2, 1]), np.array([0]), np.array([1.0]))


def test_gather_out_edges_matches_slices(diamond):
    idx, src = gather_out_edges(diamond.indptr, np.array([0, 2]))
    assert idx.tolist() == [0, 1, 3]
    assert src.tolist() == [0, 0, 2]


def test_gather_out_edges_empty_frontier(diamond):
    idx, src = gather_out_edges(diamond.indptr, np.array([], dtype=np.int64))
    assert idx.size == 0 and src.size == 0


def test_gather_out_edges_sink_only(diamond):
    idx, src = gather_out_edges(diamond.indptr, np.array([3]))
    assert idx.size == 0


def test_gather_out_edges_random_graph_exhaustive():
    g = CSRGraph.from_edges(rmat_edges(64, 512, seed=1))
    rng = np.random.default_rng(0)
    frontier = np.unique(rng.integers(0, 64, 20))
    idx, src = gather_out_edges(g.indptr, frontier)
    expected = np.concatenate(
        [np.arange(g.indptr[u], g.indptr[u + 1]) for u in frontier]
    )
    assert idx.tolist() == expected.tolist()
    assert np.all(g.src_of_edge[idx] == src)
