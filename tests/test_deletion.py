"""Tests for KickStarter-style deletion repair."""

import numpy as np
import pytest

from repro.algorithms import SSSP, all_algorithms
from repro.engines import DeletionRepair, MultiVersionEngine, TraceCollector
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


def make_static(graph: CSRGraph) -> UnifiedCSR:
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


def repair_setup(graph, algo, source=0):
    u = make_static(graph)
    collector = TraceCollector(graph.n_edges)
    engine = MultiVersionEngine(algo, u, collector=collector, track_parents=True)
    vals = engine.evaluate_full(
        np.ones(graph.n_edges, dtype=bool), source, parent_row=0
    )
    return u, engine, DeletionRepair(engine), vals, collector


def test_requires_parent_tracking():
    g = CSRGraph.from_tuples(2, [(0, 1)])
    engine = MultiVersionEngine(SSSP(), make_static(g))
    with pytest.raises(ValueError):
        DeletionRepair(engine)


def test_delete_tree_edge_invalidates_subtree():
    # 0 -> 1 -> 2 -> 3 and a slower alternative 0 -> 2 (wt 10)
    g = CSRGraph.from_tuples(
        4, [(0, 1, 1.0), (0, 2, 10.0), (1, 2, 1.0), (2, 3, 1.0)]
    )
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    assert vals.tolist() == [0.0, 1.0, 2.0, 3.0]
    # delete the winning edge (1,2) -> 2 and 3 must re-route via (0,2)
    presence_after = np.ones(4, dtype=bool)
    presence_after[2] = False
    stats = repair.apply_deletions(vals, np.array([2]), presence_after, 0)
    assert vals.tolist() == [0.0, 1.0, 10.0, 11.0]
    assert stats.tagged_vertices == 2  # vertices 2 and 3


def test_delete_nonparent_edge_is_cheap():
    g = CSRGraph.from_tuples(
        4, [(0, 1, 1.0), (0, 2, 10.0), (1, 2, 1.0), (2, 3, 1.0)]
    )
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    # (0,2) wt 10 never won; deleting it changes nothing
    presence_after = np.ones(4, dtype=bool)
    presence_after[1] = False
    stats = repair.apply_deletions(vals, np.array([1]), presence_after, 0)
    assert vals.tolist() == [0.0, 1.0, 2.0, 3.0]
    assert stats.tagged_vertices == 0
    assert stats.recompute_rounds == 0


def test_delete_disconnects_vertex():
    g = CSRGraph.from_tuples(3, [(0, 1, 1.0), (1, 2, 1.0)])
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    presence_after = np.array([True, False])
    repair.apply_deletions(vals, np.array([1]), presence_after, 0)
    assert vals.tolist() == [0.0, 1.0, np.inf]


def test_presence_after_must_exclude_deleted():
    g = CSRGraph.from_tuples(2, [(0, 1)])
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    with pytest.raises(ValueError):
        repair.apply_deletions(vals, np.array([0]), np.ones(1, dtype=bool), 0)


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_deletions_match_scratch(algo, seed):
    """Randomized repair equals from-scratch evaluation on the reduced graph
    for every algorithm."""
    edges = rmat_edges(96, 700, seed=seed)
    g = CSRGraph.from_edges(edges)
    u, engine, repair, vals, __ = repair_setup(g, algo)
    rng = np.random.default_rng(seed + 100)
    doomed = rng.choice(g.n_edges, size=60, replace=False)
    presence_after = np.ones(g.n_edges, dtype=bool)
    presence_after[doomed] = False
    repair.apply_deletions(vals, doomed, presence_after, 0)
    fresh = MultiVersionEngine(algo, u)
    expected = fresh.evaluate_full(presence_after, 0)
    assert np.allclose(vals, expected, equal_nan=True)


def test_sequential_deletions_stay_correct():
    """Repair composes: multiple deletion batches in sequence."""
    edges = rmat_edges(64, 512, seed=9)
    g = CSRGraph.from_edges(edges)
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    presence = np.ones(g.n_edges, dtype=bool)
    rng = np.random.default_rng(5)
    for __ in range(4):
        candidates = np.flatnonzero(presence)
        doomed = rng.choice(candidates, size=25, replace=False)
        presence = presence.copy()
        presence[doomed] = False
        repair.apply_deletions(vals, doomed, presence, 0)
    fresh = MultiVersionEngine(SSSP(), u)
    assert np.allclose(vals, fresh.evaluate_full(presence, 0))


def test_deletions_cost_more_than_additions():
    """The Fig. 2 motivation: for the same batch size, deletion repair
    generates substantially more events than incremental addition."""
    edges = rmat_edges(256, 2048, seed=3)
    g = CSRGraph.from_edges(edges)
    u, engine, repair, vals, collector = repair_setup(g, SSSP())
    rng = np.random.default_rng(7)
    doomed = rng.choice(g.n_edges, size=40, replace=False)
    presence_after = np.ones(g.n_edges, dtype=bool)
    presence_after[doomed] = False
    repair.apply_deletions(vals, doomed, presence_after, 0)
    del_events = collector.executions[-1].events_generated

    # Incremental re-addition of the same edges from the reduced state.
    engine.apply_additions(
        vals[None, :], doomed, np.ones((1, g.n_edges), dtype=bool),
        parent_rows=np.array([0]),
    )
    add_events = collector.executions[-1].events_generated
    assert del_events > add_events


def test_parents_remain_consistent_after_repair():
    """After repair, each reached non-source vertex's parent edge exists and
    reproduces its value."""
    edges = rmat_edges(96, 768, seed=4)
    g = CSRGraph.from_edges(edges)
    u, engine, repair, vals, __ = repair_setup(g, SSSP())
    rng = np.random.default_rng(11)
    doomed = rng.choice(g.n_edges, size=50, replace=False)
    presence_after = np.ones(g.n_edges, dtype=bool)
    presence_after[doomed] = False
    repair.apply_deletions(vals, doomed, presence_after, 0)

    parent = engine.parent_edge[0]
    reached = np.flatnonzero(vals != np.inf)
    for v in reached:
        if v == 0:
            continue
        e = parent[v]
        assert e >= 0
        assert presence_after[e]
        assert g.dst[e] == v
        src = g.src_of_edge[e]
        assert np.isclose(vals[v], vals[src] + g.wt[e])
