"""Tests for the markdown report builder."""

from repro.experiments.report import _ORDER, _as_markdown_table, write_report
from repro.experiments.runner import ExperimentResult


def test_order_covers_registry():
    from repro.experiments import ALL_EXPERIMENTS

    assert set(_ORDER) == set(ALL_EXPERIMENTS)
    assert _ORDER[0] == "summary"  # verdicts first


def test_markdown_table_rendering():
    r = ExperimentResult("X", "t", ["a", "b"])
    r.add("row", 1.23456)
    md = _as_markdown_table(r)
    lines = md.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "1.235" in lines[2]


def test_write_report_is_exercised_via_cli():
    """The end-to-end report run lives in test_cli.py (one full pass at
    tiny scale); here we only pin the structure helpers."""
    assert callable(write_report)
