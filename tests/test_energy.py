"""Tests for the energy model (§5.3's power-efficiency claim)."""

import pytest

from repro.accel import MegaSimulator
from repro.accel.energy import PLATFORM_POWER_W, EnergyModel
from repro.algorithms import get_algorithm
from repro.workloads import load_scenario


@pytest.fixture(scope="module")
def mega_energy():
    scenario = load_scenario("PK", "tiny")
    report = MegaSimulator("boe", pipeline=True).run(
        scenario, get_algorithm("sssp")
    )
    return EnergyModel().accelerator_energy(report)


def test_mega_power_is_about_ten_watts(mega_energy):
    """The paper's headline: 'Consuming only 10 Watts'."""
    assert 8.0 < mega_energy.avg_power_w < 11.0


def test_energy_positive_and_consistent(mega_energy):
    assert mega_energy.energy_mj > 0
    expected = mega_energy.avg_power_w * mega_energy.time_ms
    assert mega_energy.energy_mj == pytest.approx(expected)


def test_software_energy_uses_platform_power():
    rep = EnergyModel.software_energy("x", "k80", time_ms=2.0)
    assert rep.avg_power_w == PLATFORM_POWER_W["k80"]
    assert rep.energy_mj == pytest.approx(600.0)


def test_software_energy_rejects_unknown_platform():
    with pytest.raises(KeyError):
        EnergyModel.software_energy("x", "tpu", 1.0)
    with pytest.raises(ValueError):
        EnergyModel.software_energy("x", "mega", 1.0)


def test_efficiency_ratio(mega_energy):
    cpu = EnergyModel.software_energy("cpu", "xeon-60core", time_ms=1.0)
    advantage = mega_energy.efficiency_over(cpu)
    assert advantage > 10.0  # substantially more power-efficient


def test_duty_cycle_bounds():
    """Average power never exceeds the full-tilt Table 5 total."""
    from repro.accel.power import PowerAreaModel

    total = PowerAreaModel().total().total_mw / 1e3
    scenario = load_scenario("LJ", "tiny")
    for wf in ("direct-hop", "boe"):
        report = MegaSimulator(wf).run(scenario, get_algorithm("bfs"))
        e = EnergyModel().accelerator_energy(report)
        assert e.avg_power_w <= total + 1e-9


def test_energy_report_is_frozen(mega_energy):
    with pytest.raises(AttributeError):
        mega_energy.energy_mj = 0.0
