"""Property-based tests for the timing model's monotonicity invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.accel.cache import EdgeCacheModel
from repro.accel.config import mega_config
from repro.accel.memory import MemorySystem, PartitionPlan
from repro.accel.stats import SimCounters
from repro.accel.timing import TimingModel
from repro.engines.trace import RoundTrace
from repro.graph.csr import CSRGraph

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_timing():
    g = CSRGraph.from_tuples(4, [(0, 1), (1, 2), (2, 3)])
    cfg = mega_config(capacity_scale=1.0)
    return TimingModel(cfg, MemorySystem(cfg, g), EdgeCacheModel(0, 1024))


def make_round(events, generated, blocks, phase="add", versions=1):
    return RoundTrace(
        phase=phase,
        events_popped=events,
        events_generated=generated,
        edges_fetched=generated,
        edge_blocks=np.arange(blocks, dtype=np.int64),
        vertex_reads=events + generated,
        vertex_writes=events,
        n_versions=versions,
        dst_vertices=np.arange(min(events, 16), dtype=np.int64),
        src_vertices=np.arange(min(events, 16), dtype=np.int64),
        version_events_popped=events * versions,
        version_events_generated=generated * versions,
        version_vertex_writes=events * versions,
    )


@SETTINGS
@given(
    events=st.integers(0, 10_000),
    generated=st.integers(0, 50_000),
    blocks=st.integers(0, 500),
)
def test_cost_components_nonnegative(events, generated, blocks):
    timing = fresh_timing()
    part = PartitionPlan(1, 0.0, 0.0, 0.0)
    cost = timing.round_group_cost(
        [(make_round(events, generated, blocks), part)], SimCounters()
    )
    assert cost.pe >= 0 and cost.queue >= 0
    assert cost.noc >= 0 and cost.dram >= 0
    assert cost.total >= cost.overhead


@SETTINGS
@given(
    base=st.integers(0, 5_000),
    extra=st.integers(1, 5_000),
    generated=st.integers(0, 10_000),
)
def test_more_events_never_cheaper(base, extra, generated):
    part = PartitionPlan(1, 0.0, 0.0, 0.0)
    small = fresh_timing().round_group_cost(
        [(make_round(base, generated, 0), part)], SimCounters()
    )
    big = fresh_timing().round_group_cost(
        [(make_round(base + extra, generated, 0), part)], SimCounters()
    )
    assert big.pe >= small.pe
    assert big.total >= small.total - 30.0  # prefetch latency hiding slack


@SETTINGS
@given(blocks=st.integers(0, 400), extra=st.integers(1, 400))
def test_more_cold_blocks_more_dram(blocks, extra):
    part = PartitionPlan(1, 0.0, 0.0, 0.0)
    c1, c2 = SimCounters(), SimCounters()
    fresh_timing().round_group_cost(
        [(make_round(10, 10, blocks), part)], c1
    )
    fresh_timing().round_group_cost(
        [(make_round(10, 10, blocks + extra), part)], c2
    )
    assert c2.dram_bytes > c1.dram_bytes


@SETTINGS
@given(
    touched=st.integers(0, 10_000),
    cross_lo=st.floats(0.0, 0.5),
    cross_hi=st.floats(0.5, 1.0),
    versions=st.integers(1, 32),
)
def test_spill_monotone_in_cross_fraction(touched, cross_lo, cross_hi, versions):
    timing = fresh_timing()
    lo = timing.execution_spill_cycles(
        touched, versions, PartitionPlan(4, 1.0, 1.0, cross_lo), SimCounters()
    )
    hi = timing.execution_spill_cycles(
        touched, versions, PartitionPlan(4, 1.0, 1.0, cross_hi), SimCounters()
    )
    assert hi >= lo


@SETTINGS
@given(
    events=st.integers(1, 2_000),
    generated=st.integers(1, 2_000),
    factor=st.floats(1.0, 20.0),
)
def test_deletion_factor_scales_pe_only(events, generated, factor):
    from dataclasses import replace

    g = CSRGraph.from_tuples(2, [(0, 1)])
    cfg = replace(mega_config(capacity_scale=1.0), deletion_event_factor=factor)
    timing = TimingModel(cfg, MemorySystem(cfg, g), EdgeCacheModel(0, 64))
    part = PartitionPlan(1, 0.0, 0.0, 0.0)
    add = timing.round_group_cost(
        [(make_round(events, generated, 0, phase="add"), part)], SimCounters()
    )
    tag = timing.round_group_cost(
        [(make_round(events, generated, 0, phase="del-tag"), part)],
        SimCounters(),
    )
    assert tag.pe == add.pe * factor or abs(tag.pe - add.pe * factor) < 1e-9
    assert tag.queue == add.queue
    assert tag.noc == add.noc
