"""Tests for the binned coalescing event queue (Fig. 13)."""

import pytest

from repro.accel.event import Event
from repro.accel.queue import EventQueue, QueueDecoder
from repro.algorithms import SSSP, SSWP


def test_decoder_interleaves_banks():
    d = QueueDecoder(n_bins=4, n_versions=2)
    assert d.locate(0, 0) == (0, 0, 0)
    assert d.locate(5, 1) == (1, 1, 1)
    assert d.locate(8, 0) == (0, 2, 0)


def test_decoder_version_bounds():
    d = QueueDecoder(n_bins=4, n_versions=2)
    with pytest.raises(ValueError):
        d.locate(0, 2)


def test_insert_and_pop_round():
    q = EventQueue(SSSP(), n_bins=4)
    q.insert(Event(3, 1.0))
    q.insert(Event(7, 2.0))
    events = q.pop_round()
    assert [(e.vertex, e.payload) for e in events] == [(3, 1.0), (7, 2.0)]
    assert q.occupancy() == 0


def test_coalescing_keeps_minimum_for_min_algorithms():
    q = EventQueue(SSSP(), n_bins=2)
    q.insert(Event(5, 9.0))
    coalesced = q.insert(Event(5, 4.0))
    assert coalesced
    [e] = q.pop_round()
    assert e.payload == 4.0
    assert q.coalesced == 1
    assert q.inserts == 2


def test_coalescing_keeps_maximum_for_max_algorithms():
    q = EventQueue(SSWP(), n_bins=2)
    q.insert(Event(5, 4.0))
    q.insert(Event(5, 9.0))
    [e] = q.pop_round()
    assert e.payload == 9.0


def test_coalescing_is_worse_payload_safe():
    """A worse delta arriving later never overwrites a better one."""
    q = EventQueue(SSSP(), n_bins=2)
    q.insert(Event(5, 4.0))
    q.insert(Event(5, 9.0))
    [e] = q.pop_round()
    assert e.payload == 4.0


def test_versions_do_not_coalesce_together():
    q = EventQueue(SSSP(), n_bins=2, n_versions=3)
    q.insert(Event(5, 4.0, version=0))
    q.insert(Event(5, 9.0, version=2))
    events = q.pop_round()
    assert len(events) == 2
    assert {(e.version, e.payload) for e in events} == {(0, 4.0), (2, 9.0)}


def test_at_most_one_live_event_per_cell():
    q = EventQueue(SSSP(), n_bins=4, n_versions=2)
    for payload in (5.0, 3.0, 8.0, 1.0):
        q.insert(Event(9, payload, version=1))
    assert q.occupancy() == 1


def test_delete_event_replaces_value_event():
    q = EventQueue(SSSP(), n_bins=2)
    q.insert(Event(5, 4.0))
    q.insert(Event(5, 0.0, is_delete=True))
    [e] = q.pop_round()
    assert e.is_delete


def test_pop_bin_drains_only_that_bin():
    q = EventQueue(SSSP(), n_bins=2)
    q.insert(Event(0, 1.0))  # bank 0
    q.insert(Event(1, 2.0))  # bank 1
    bin0 = q.pop_bin(0)
    assert [e.vertex for e in bin0] == [0]
    assert q.occupancy() == 1


def test_bin_occupancy_accounts_all_banks():
    q = EventQueue(SSSP(), n_bins=4)
    for v in range(8):
        q.insert(Event(v, 1.0))
    assert q.bin_occupancy() == [2, 2, 2, 2]
    assert len(q) == 8


def test_pop_round_is_sorted_by_version_then_vertex():
    q = EventQueue(SSSP(), n_bins=3, n_versions=2)
    q.insert(Event(5, 1.0, version=1))
    q.insert(Event(2, 1.0, version=0))
    q.insert(Event(9, 1.0, version=0))
    events = q.pop_round()
    assert [(e.version, e.vertex) for e in events] == [(0, 2), (0, 9), (1, 5)]
