"""Unit tests for the unified evolving-graph CSR (paper Fig. 6)."""

import numpy as np
import pytest

from repro.evolving.batches import BatchId, BatchKind
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph


@pytest.fixture
def unified():
    """Hand-built 3-snapshot window over 4 vertices.

    Edges: (0,1) common; (1,2) deleted at step 0; (2,3) deleted at step 1;
    (0,2) added at step 0; (1,3) added at step 1.
    """
    g = CSRGraph.from_tuples(
        4,
        [(0, 1, 1.0), (0, 2, 2.0), (1, 2, 3.0), (1, 3, 4.0), (2, 3, 5.0)],
    )
    # CSR order: (0,1), (0,2), (1,2), (1,3), (2,3)
    add_step = np.array([-1, 0, -1, 1, -1], dtype=np.int32)
    del_step = np.array([-1, -1, 0, -1, 1], dtype=np.int32)
    return UnifiedCSR(g, add_step, del_step, n_snapshots=3)


def test_common_mask(unified):
    assert unified.common_mask.tolist() == [True, False, False, False, False]


def test_presence_masks_match_interval_semantics(unified):
    # snapshot 0: common + all future deletions, no additions yet
    assert unified.presence_mask(0).tolist() == [True, False, True, False, True]
    # snapshot 1: del@0 gone, add@0 arrived
    assert unified.presence_mask(1).tolist() == [True, True, False, False, True]
    # snapshot 2: del@1 gone, add@1 arrived
    assert unified.presence_mask(2).tolist() == [True, True, False, True, False]


def test_presence_of_subset(unified):
    idx = np.array([1, 4])
    assert unified.presence_of(0, idx).tolist() == [False, True]
    assert unified.presence_of(2, idx).tolist() == [True, False]


def test_presence_planes_shape_and_packing(unified):
    planes = unified.presence_planes()
    assert planes.dtype == np.uint8
    assert planes.shape == (1, 5)  # ceil(3/8) planes over 5 union edges
    assert not planes.flags.writeable
    assert unified.presence_planes() is planes  # lazy, cached


def test_packed_presence_matches_dense_reference(unified):
    """The packed planes encode exactly what the tag compares say."""
    all_idx = np.arange(unified.n_union_edges)
    for k in range(unified.n_snapshots):
        dense = unified._presence_of_dense(k, all_idx)
        assert unified.presence_mask(k).tolist() == dense.tolist()
        sub = np.array([0, 2, 4])
        assert (
            unified.presence_of(k, sub).tolist()
            == unified._presence_of_dense(k, sub).tolist()
        )


def test_presence_multi_matches_per_snapshot(unified):
    idx = np.array([1, 3, 4])
    multi = unified.presence_multi(idx)
    assert multi.shape == (3, 3) and multi.dtype == bool
    for k in range(unified.n_snapshots):
        assert multi[k].tolist() == unified.presence_of(k, idx).tolist()
    full = unified.presence_multi()
    assert full.shape == (3, 5)
    for k in range(unified.n_snapshots):
        assert full[k].tolist() == unified.presence_mask(k).tolist()


def test_presence_multi_empty_edge_set(unified):
    multi = unified.presence_multi(np.array([], dtype=np.int64))
    assert multi.shape == (3, 0)


def test_presence_planes_injection(unified):
    """An attach can hand the planes over; they are adopted verbatim."""
    planes = unified.presence_planes()
    again = UnifiedCSR(
        unified.graph,
        unified.add_step,
        unified.del_step,
        unified.n_snapshots,
        presence_planes=planes.copy(),
    )
    assert again.presence_mask(1).tolist() == unified.presence_mask(1).tolist()
    bad = np.zeros((2, 5), dtype=np.uint8)
    with pytest.raises(ValueError):
        UnifiedCSR(
            unified.graph, unified.add_step, unified.del_step,
            unified.n_snapshots, presence_planes=bad,
        )


def test_presence_planes_many_snapshots():
    """More than 8 snapshots spill into a second byte plane."""
    g = CSRGraph.from_tuples(3, [(0, 1, 1.0), (1, 2, 1.0)])
    add_step = np.array([-1, 7], dtype=np.int32)
    del_step = np.array([3, -1], dtype=np.int32)
    u = UnifiedCSR(g, add_step, del_step, n_snapshots=12)
    assert u.presence_planes().shape == (2, 2)
    all_idx = np.arange(2)
    for k in range(12):
        assert (
            u.presence_mask(k).tolist()
            == u._presence_of_dense(k, all_idx).tolist()
        )
    multi = u.presence_multi()
    assert multi.shape == (12, 2)
    assert multi[:, 0].tolist() == [k <= 3 for k in range(12)]
    assert multi[:, 1].tolist() == [k > 7 for k in range(12)]


def test_snapshot_graph_materialization(unified):
    g1 = unified.snapshot_graph(1)
    assert g1.n_edges == 3
    assert g1.has_edge(0, 2)
    assert not g1.has_edge(1, 2)


def test_snapshot_graph_cached(unified):
    assert unified.snapshot_graph(1) is unified.snapshot_graph(1)


def test_common_graph(unified):
    gc = unified.common_graph()
    assert gc.n_edges == 1
    assert gc.has_edge(0, 1)


def test_batches(unified):
    add0 = unified.batch(BatchId(BatchKind.ADDITION, 0))
    assert add0.edge_idx.tolist() == [1]
    del1 = unified.batch(BatchId(BatchKind.DELETION, 1))
    assert del1.edge_idx.tolist() == [4]
    assert len(unified.addition_batches()) == 2
    assert len(unified.deletion_batches()) == 2


def test_batch_target_snapshots(unified):
    add0 = unified.batch(BatchId(BatchKind.ADDITION, 0))
    assert list(add0.target_snapshots(3)) == [1, 2]
    del1 = unified.batch(BatchId(BatchKind.DELETION, 1))
    assert list(del1.target_snapshots(3)) == [0, 1]


def test_snapshot_out_of_range(unified):
    with pytest.raises(IndexError):
        unified.presence_mask(3)
    with pytest.raises(IndexError):
        unified.snapshot_graph(-1)


def test_rejects_edge_both_added_and_deleted():
    g = CSRGraph.from_tuples(2, [(0, 1)])
    with pytest.raises(ValueError):
        UnifiedCSR(g, np.array([0]), np.array([0]), 3)


def test_rejects_step_out_of_range():
    g = CSRGraph.from_tuples(2, [(0, 1)])
    with pytest.raises(ValueError):
        UnifiedCSR(g, np.array([2]), np.array([-1]), 3)


def test_reverse_graph_origin_mapping(unified):
    rev = unified.reverse_graph()
    origin = unified.reverse_edge_origin
    g = unified.graph
    # every reverse slot maps back to a union slot with swapped endpoints
    for r_slot in range(rev.n_edges):
        u_slot = origin[r_slot]
        assert g.dst[u_slot] == rev.src_of_edge[r_slot]
        assert g.src_of_edge[u_slot] == rev.dst[r_slot]
        assert g.wt[u_slot] == rev.wt[r_slot]
