"""Unit tests for the accelerator configuration (Table 3 parameters)."""

import pytest

from repro.accel.config import (
    MB,
    AcceleratorConfig,
    jetstream_config,
    mega_config,
)


def test_table3_defaults():
    cfg = mega_config()
    assert cfg.n_pes == 8
    assert cfg.gen_units_per_pe == 4
    assert cfg.clock_ghz == 1.0
    assert cfg.onchip_mb == 64.0
    assert cfg.dram_channels == 4
    assert cfg.channel_gb_s == 17.0
    assert cfg.noc_ports == 16


def test_derived_throughputs():
    cfg = mega_config()
    assert cfg.event_throughput_per_cycle == 8
    assert cfg.generation_throughput_per_cycle == 32
    assert cfg.dram_bytes_per_cycle == pytest.approx(68.0)
    assert cfg.edges_per_block == 8


def test_feature_flags_differ():
    js, mega = jetstream_config(), mega_config()
    assert js.supports_deletions and not js.multi_snapshot
    assert not mega.supports_deletions and mega.multi_snapshot
    assert js.name == "jetstream" and mega.name == "mega"


def test_capacity_scale_sentinel():
    assert mega_config().capacity_scale is None
    assert mega_config().onchip_bytes == 64 * MB  # None behaves as 1.0
    scaled = mega_config().scaled(0.25)
    assert scaled.capacity_scale == 0.25
    assert scaled.onchip_bytes == pytest.approx(16 * MB)


def test_with_onchip_mb_preserves_rest():
    cfg = mega_config(capacity_scale=0.5).with_onchip_mb(128)
    assert cfg.onchip_mb == 128
    assert cfg.capacity_scale == 0.5
    assert cfg.name == "mega"


def test_config_is_frozen():
    cfg = mega_config()
    with pytest.raises(AttributeError):
        cfg.n_pes = 4


def test_edge_cache_floor():
    tiny = mega_config(capacity_scale=1e-9)
    assert tiny.edge_cache_bytes >= 16 * tiny.block_bytes


def test_custom_block_geometry():
    cfg = AcceleratorConfig(block_bytes=128, edge_bytes=16)
    assert cfg.edges_per_block == 8
    assert AcceleratorConfig(block_bytes=4, edge_bytes=8).edges_per_block == 1
