"""Differential parity: compiled kernel tiers vs the numpy reference.

The backend contract (docs/PERFORMANCE.md, "Kernel backends") is
bit-identical answers: values, parent tracking, and tie-break order must
match the numpy reference exactly on every tier, for every algorithm.
These tests re-run the same workloads under ``numpy`` and each available
compiled tier and compare with ``array_equal`` — no tolerances.

Backend selection is process-wide state, so every test that flips it
restores the environment's choice via ``reset_backend`` on exit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import all_algorithms, get_algorithm
from repro.core.multi_query import evaluate_multi_query
from repro.engines import DeletionRepair, MultiVersionEngine
from repro.evolving import synthesize_scenario
from repro.graph.generators import rmat_edges
from repro.perf.backend import (
    OPS,
    available_backends,
    backend_info,
    get_backend,
    reference,
    reset_backend,
    resolve_backend,
)

#: compiled tiers importable on this machine (cext needs a C compiler,
#: numba the numba package); empty -> the differential tests skip
COMPILED = [name for name in available_backends() if name != "numpy"]


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    reset_backend()


@pytest.fixture(params=COMPILED if COMPILED else ["missing"])
def compiled(request):
    if not COMPILED:
        pytest.skip("no compiled kernel tier available")
    return request.param


def _scenario():
    pool = rmat_edges(n_vertices=192, n_edges=1536, seed=21)
    return synthesize_scenario(
        pool, n_snapshots=6, batch_pct=0.05, seed=22, name="backends"
    )


# -- registry behavior ------------------------------------------------------


def test_numpy_backend_always_resolves():
    be = resolve_backend("numpy")
    assert be.name == "numpy"
    assert not be.compiled
    assert be.daic_round is None and be.presence_gather is None


def test_invalid_backend_name_rejected():
    with pytest.raises(ValueError):
        resolve_backend("fpga")


def test_explicit_request_overrides_cached(monkeypatch):
    monkeypatch.setenv("MEGA_KERNEL_BACKEND", "numpy")
    reset_backend()
    assert get_backend().name == "numpy"
    if COMPILED:
        assert resolve_backend(COMPILED[0]).name == COMPILED[0]
        # argument-free calls keep the explicit choice
        assert get_backend().name == COMPILED[0]


def test_backend_info_reports_tiers():
    info = backend_info()
    assert info["active"] in available_backends()
    assert "numpy" in info["available"]
    assert isinstance(info["numba"], str)  # a version or "unavailable"


def test_kernel_ops_cover_core_algorithms():
    for algorithm in all_algorithms():
        assert algorithm.kernel_op in OPS


# -- group_argbest ----------------------------------------------------------


def _argbest_cases(rng):
    yield rng.integers(0, 50, 400).astype(np.int64), rng.random(400)
    # heavy duplication exercises the tie-break order
    yield np.repeat(np.arange(8, dtype=np.int64), 64), np.tile(
        rng.random(8), 64
    )
    yield np.zeros(16, dtype=np.int64), np.full(16, 0.5)
    yield np.empty(0, dtype=np.int64), np.empty(0)


def test_group_argbest_matches_reference(compiled):
    be = resolve_backend(compiled)
    rng = np.random.default_rng(5)
    for keys, cands in _argbest_cases(rng):
        for minimize in (True, False):
            u_ref, b_ref = reference.group_argbest(keys, cands, minimize)
            u_got, b_got = be.group_argbest(keys, cands, minimize)
            assert np.array_equal(u_ref, u_got)
            # ties must break toward the lowest input index, exactly
            assert np.array_equal(b_ref, b_got)


def test_group_argbest_sparse_domain_falls_back(compiled):
    be = resolve_backend(compiled)
    keys = np.array([0, 1 << 40, 7], dtype=np.int64)
    cands = np.array([3.0, 1.0, 2.0])
    u_ref, b_ref = reference.group_argbest(keys, cands, True)
    u_got, b_got = be.group_argbest(keys, cands, True)
    assert np.array_equal(u_ref, u_got) and np.array_equal(b_ref, b_got)


# -- presence gather --------------------------------------------------------


def test_presence_gather_matches_unpackbits(compiled):
    be = resolve_backend(compiled)
    unified = _scenario().unified
    planes = unified.presence_planes()
    rng = np.random.default_rng(9)
    for size in (0, 1, 257):
        idx = rng.integers(0, unified.n_union_edges, size).astype(np.int64)
        ref = np.unpackbits(
            planes[:, idx], axis=0, count=unified.n_snapshots,
            bitorder="little",
        ).view(bool)
        got = be.presence_gather(planes, idx, unified.n_snapshots)
        assert got.dtype == np.bool_
        assert np.array_equal(ref, got)


# -- full engine differential: values for all five algorithms ---------------


def _run_all(scenario, sources):
    out = {}
    for algorithm in all_algorithms():
        res = evaluate_multi_query(scenario, algorithm, sources)
        out[algorithm.name] = [
            res.values(q, s).copy()
            for q in range(len(sources))
            for s in range(scenario.n_snapshots)
        ]
    return out


def test_engine_values_bit_identical(compiled):
    scenario = _scenario()
    sources = [0, 5, 11]
    resolve_backend("numpy")
    ref = _run_all(scenario, sources)
    resolve_backend(compiled)
    got = _run_all(scenario, sources)
    for name in ref:
        for a, b in zip(ref[name], got[name]):
            assert np.array_equal(a, b, equal_nan=True), name


def _parent_run(unified, backend_name):
    resolve_backend(backend_name)
    algo = get_algorithm("sssp")
    engine = MultiVersionEngine(algo, unified, track_parents=True)
    presence = np.ones(unified.n_union_edges, dtype=bool)
    vals = engine.evaluate_full(presence, source=0)
    return vals.copy(), engine.parent_edge.copy()


def test_parent_tracking_bit_identical(compiled):
    unified = _scenario().unified
    vals_ref, parents_ref = _parent_run(unified, "numpy")
    vals_got, parents_got = _parent_run(unified, compiled)
    assert np.array_equal(vals_ref, vals_got, equal_nan=True)
    # identical winning edge ids, not merely identical values: the
    # lowest-flat-index tie-break is part of the contract
    assert np.array_equal(parents_ref, parents_got)


def _deletion_run(unified, backend_name):
    resolve_backend(backend_name)
    engine = MultiVersionEngine(
        get_algorithm("sssp"), unified, track_parents=True
    )
    presence = np.ones(unified.n_union_edges, dtype=bool)
    vals = engine.evaluate_full(presence, source=0)
    repair = DeletionRepair(engine)
    reached = np.flatnonzero(np.isfinite(vals))
    victim = int(engine.parent_edge[0][reached[-1]])
    after = presence.copy()
    after[victim] = False
    repair.apply_deletions(vals, np.array([victim]), after, 0)
    return vals.copy(), engine.parent_edge.copy()


def test_deletion_repair_bit_identical(compiled):
    unified = _scenario().unified
    vals_ref, parents_ref = _deletion_run(unified, "numpy")
    vals_got, parents_got = _deletion_run(unified, compiled)
    assert np.array_equal(vals_ref, vals_got, equal_nan=True)
    assert np.array_equal(parents_ref, parents_got)


def test_nan_weights_poison_on_every_tier(compiled):
    from repro.evolving.unified_csr import UnifiedCSR
    from repro.graph.csr import CSRGraph

    for name in ("numpy", compiled):
        resolve_backend(name)
        g = CSRGraph.from_tuples(3, [(0, 1, float("nan")), (1, 2, 1.0)])
        none = np.full(2, -1, dtype=np.int32)
        u = UnifiedCSR(g, none, none.copy(), 1)
        engine = MultiVersionEngine(get_algorithm("sssp"), u)
        vals = engine.evaluate_full(np.ones(2, dtype=bool), 0)
        assert np.isnan(vals[1]), name


def test_empty_frontier_noop(compiled):
    resolve_backend(compiled)
    unified = _scenario().unified
    engine = MultiVersionEngine(get_algorithm("bfs"), unified)
    values = engine.algorithm.identity_values(unified.n_vertices)[None, :]
    frontier = np.zeros((1, unified.n_vertices), dtype=bool)
    presence = np.ones((1, unified.n_union_edges), dtype=bool)
    before = values.copy()
    engine.propagate(values, frontier, presence)
    assert np.array_equal(values, before)


def test_traces_identical_across_backends(compiled):
    """The fused round must reproduce the recorded event counters, not
    just the answers — the trace is the accelerator model's input."""
    from repro.engines import TraceCollector

    scenario = _scenario()

    def trace_totals(backend_name):
        resolve_backend(backend_name)
        unified = scenario.unified
        collector = TraceCollector(unified.n_union_edges)
        engine = MultiVersionEngine(
            get_algorithm("sssp"), unified, collector=collector
        )
        presence = np.ones(unified.n_union_edges, dtype=bool)
        engine.evaluate_full(presence, source=0)
        return [
            (
                r.events_popped, r.events_generated, r.vertex_writes,
                r.version_events_popped, r.version_events_generated,
                r.version_vertex_writes,
            )
            for execution in collector.executions
            for r in execution.rounds
        ]

    assert trace_totals("numpy") == trace_totals(compiled)
