"""Coalesced multi-query plans equal per-query sequential runs.

The query service leans on ``multi_query_boe_plan`` to merge compatible
concurrent queries into one shared plan, so this parity must hold for
every algorithm the registry exposes — not just the one the service
happens to batch first.  Each case compares the coalesced values against
(a) singleton multi-query runs and (b) the from-scratch reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi_query import evaluate_multi_query
from repro.engines.validation import evaluate_reference
from repro.evolving.snapshots import EvolvingScenario
from repro.resilience import Budget, BudgetExceeded


def _sources(scenario, count=3):
    degrees = np.diff(scenario.common_graph().indptr)
    ranked = np.argsort(-degrees)
    return [int(v) for v in ranked[:count]]


def test_coalesced_equals_sequential(small_scenario, algorithm):
    """One shared plan for Q sources == Q singleton plans, all algos."""
    sources = _sources(small_scenario)
    coalesced = evaluate_multi_query(small_scenario, algorithm, sources)
    for q, source in enumerate(sources):
        single = evaluate_multi_query(small_scenario, algorithm, [source])
        for k in range(small_scenario.n_snapshots):
            assert np.allclose(
                coalesced.values(q, k), single.values(0, k), equal_nan=True
            ), (algorithm.name, q, k)


def test_coalesced_equals_reference(small_scenario, algorithm):
    """The shared plan also matches from-scratch evaluation per snapshot."""
    sources = _sources(small_scenario)
    coalesced = evaluate_multi_query(small_scenario, algorithm, sources)
    for q, source in enumerate(sources):
        requeried = EvolvingScenario(
            small_scenario.unified, source=source, name="parity"
        )
        for k in range(small_scenario.n_snapshots):
            expected = evaluate_reference(requeried, algorithm, k)
            assert np.allclose(
                coalesced.values(q, k), expected, equal_nan=True
            ), (algorithm.name, q, k)


def test_duplicate_sources_agree(small_scenario, algorithm):
    """The same source listed twice yields identical rows (the batcher
    dedups duplicates, but the plan itself must tolerate them too)."""
    source = _sources(small_scenario, count=1)[0]
    result = evaluate_multi_query(
        small_scenario, algorithm, [source, source]
    )
    for k in range(small_scenario.n_snapshots):
        assert np.allclose(
            result.values(0, k), result.values(1, k), equal_nan=True
        )


def test_shm_attached_equals_copy(small_scenario, algorithm):
    """A worker on the shared-memory plane computes exactly what a
    copy-path worker computes, for every algorithm.

    Publishes the scenario into a real shm segment, attaches it the way
    ``repro.service.pool`` does (read-only zero-copy views), and runs the
    full coalesced plan on both sides.
    """
    from repro.service.shm import ScenarioPlane, attach_scenario

    sources = _sources(small_scenario)
    plane = ScenarioPlane()
    try:
        manifest = plane.publish(small_scenario, "small", "test", epoch=0)
        shm, attached = attach_scenario(manifest)
        via_shm = evaluate_multi_query(attached, algorithm, sources)
        via_copy = evaluate_multi_query(small_scenario, algorithm, sources)
        for q in range(len(sources)):
            for k in range(small_scenario.n_snapshots):
                assert np.allclose(
                    via_shm.values(q, k),
                    via_copy.values(q, k),
                    equal_nan=True,
                ), (algorithm.name, q, k)
        del attached, via_shm
        shm.close()
    finally:
        plane.close_all()


def test_packed_presence_equals_dense(small_scenario, algorithm, monkeypatch):
    """Plans over bit-packed presence == plans over dense tag compares.

    Forces the engine's multi-version gather through the pre-packing
    dense reference (:meth:`UnifiedCSR._presence_of_dense`) and checks
    the coalesced values are unchanged, for every algorithm.
    """
    from repro.evolving.unified_csr import UnifiedCSR

    sources = _sources(small_scenario)
    packed = evaluate_multi_query(small_scenario, algorithm, sources)

    def dense_multi(self, edge_idx=None):
        if edge_idx is None:
            edge_idx = np.arange(self.n_union_edges, dtype=np.int64)
        return np.stack(
            [
                self._presence_of_dense(k, edge_idx)
                for k in range(self.n_snapshots)
            ]
        )

    monkeypatch.setattr(UnifiedCSR, "presence_multi", dense_multi)
    dense = evaluate_multi_query(small_scenario, algorithm, sources)
    for q in range(len(sources)):
        for k in range(small_scenario.n_snapshots):
            assert np.allclose(
                packed.values(q, k), dense.values(q, k), equal_nan=True
            ), (algorithm.name, q, k)


def test_multi_query_budget_breaches(small_scenario):
    """The service's watchdog path: a tiny round budget breaches loudly."""
    from repro.algorithms import get_algorithm

    with pytest.raises(BudgetExceeded):
        evaluate_multi_query(
            small_scenario,
            get_algorithm("sssp"),
            _sources(small_scenario),
            budget=Budget(max_rounds=1),
        )
