"""WAL-shipping read replicas: follower mode, promotion, failover drill.

The replica unit tests drive ``poll_once()`` by hand against a live
tiny-scale primary so every replication step is deterministic; the
failover drill (subprocess + SIGKILL + promotion) runs once end to end.
"""

from __future__ import annotations

import time

import pytest

from repro.cli import main
from repro.resilience import faults
from repro.resilience.campaign import REPLICA_POINTS, run_trial
from repro.service import (
    LoadSpec,
    NotPrimaryError,
    QueryRequest,
    QueryService,
    ReplicaServer,
    ServiceConfig,
    WriteAheadLog,
    current_fence_token,
    read_from,
    run_failover_drill,
    run_load,
)

TINY = dict(scale="tiny", n_snapshots=4, workers=1)


def _primary(tmp_path) -> QueryService:
    return QueryService(
        ServiceConfig(**TINY, wal_dir=str(tmp_path / "wal"))
    ).start()


def _replica(tmp_path, **kwargs) -> ReplicaServer:
    return ReplicaServer(
        tmp_path / "wal", ServiceConfig(**TINY), **kwargs
    )


def _summaries(service: QueryService, source: int = 1) -> list[dict]:
    response = service.submit(
        QueryRequest("PK", "sssp", source)
    ).wait(timeout=120)
    assert response is not None and response.ok
    return [s.as_dict() for s in response.summaries]


def test_follower_syncs_serves_reads_and_refuses_ingest(tmp_path):
    primary = _primary(tmp_path)
    try:
        for k in (1, 2):
            primary.ingest("PK", seed=k)
        replica = _replica(tmp_path)
        replica.start(tail_thread=False)
        try:
            # initial sync landed both epochs; reads are served from the
            # follower's own pool and match the primary exactly
            assert replica.service.epoch("PK") == 2
            assert _summaries(replica.service) == _summaries(primary)
            # writes have exactly one home
            with pytest.raises(NotPrimaryError) as exc:
                replica.service.ingest("PK", seed=3)
            assert exc.value.role == "follower"
            assert replica.service.service_stats()["not_primary"] == 1
            # incremental tail: one new epoch, one poll, applied
            primary.ingest("PK", seed=3)
            assert replica.poll_once() == 1
            assert replica.service.epoch("PK") == 3
            # replays are idempotent, never double-applied
            assert replica.poll_once() == 0
            # the primary sees the follower's checkpoint and zero lag
            assert primary.follower_lags() == {"replica-1": 0}
            health = primary.health()
            assert health["role"] == "primary"
            assert health["followers"] == {"replica-1": 0}
        finally:
            replica.stop(drain=False)
    finally:
        primary.stop(drain=False)


def test_follower_lag_visible_in_health_and_metrics(tmp_path):
    primary = _primary(tmp_path)
    plan = faults.FaultPlan(["replica.stale-read"], seed=0)
    replica = _replica(tmp_path, fault_hook=plan.maybe_fire)
    try:
        primary.ingest("PK", seed=1)
        replica.start(tail_thread=False)
        primary.ingest("PK", seed=2)
        assert replica.poll_once() == 0  # the batch was withheld
        assert replica.lag_epochs() == 1
        health = replica.service.health()
        assert health["role"] == "follower"
        assert health["replication_lag_epochs"] == 1
        # a follower reports the primary token it observes
        assert health["fencing_token"] == current_fence_token(
            tmp_path / "wal"
        )
        assert ("mega_replication_lag_epochs 1"
                in replica.service.metrics_text())
        # the primary sees the same staleness through the cursor file
        assert primary.follower_lags()["replica-1"] == 1
        # next poll converges (the plan fires at most once)
        assert replica.poll_once() == 1
        assert replica.lag_epochs() == 0
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


def test_promotion_fences_zombie_and_accepts_ingest(tmp_path):
    wal_dir = tmp_path / "wal"
    primary = _primary(tmp_path)
    try:
        for k in (1, 2):
            primary.ingest("PK", seed=k)
    finally:
        primary.stop(drain=False)
    old_token = current_fence_token(wal_dir)
    replica = ReplicaServer(wal_dir, ServiceConfig(**TINY))
    try:
        replica.start(tail_thread=False)
        assert replica.service.epoch("PK") == 2
        token = replica.promote()
        assert token == current_fence_token(wal_dir) > old_token
        assert replica.promote() == token  # idempotent
        assert replica.service.role == "primary"
        assert replica.service.health()["fencing_token"] == token
        # the promoted node ingests durably under the new token
        assert replica.service.ingest("PK", seed=3) == 3
        # a late append by the dead primary (still holding the old
        # token) is refused by every reader
        zombie = WriteAheadLog(wal_dir, fsync="always",
                               fence_token=old_token)
        zombie.append({
            "op": "ingest", "graph": "PK", "epoch": 3,
            "delta": {"adds": [[0, 9, 9.0]], "dels": []},
        })
        zombie.close()
        tail = read_from(wal_dir)
        assert tail.fenced == 1
        assert [
            r["epoch"] for r in tail.records if r.get("op") == "ingest"
        ] == [1, 2, 3]
    finally:
        replica.stop(drain=False)


def test_tail_gap_forces_resync_and_converges(tmp_path):
    primary = _primary(tmp_path)
    plan = faults.FaultPlan(["replica.tail-gap"], seed=0)
    replica = _replica(tmp_path, fault_hook=plan.maybe_fire)
    try:
        primary.ingest("PK", seed=1)
        replica.start(tail_thread=False)
        resyncs_before = replica.resyncs
        primary.ingest("PK", seed=2)  # dropped by the armed fault
        replica.poll_once()
        primary.ingest("PK", seed=3)  # trips gap detection
        replica.poll_once()
        assert replica.resyncs == resyncs_before + 1
        assert replica.service.epoch("PK") == primary.epoch("PK") == 3
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


@pytest.mark.parametrize("point", REPLICA_POINTS)
def test_fault_campaign_replica_trials_recover(point):
    outcome = run_trial(None, None, point, seed=0, skip=1)
    assert outcome.verdict == "recovered", outcome.detail


def test_run_load_redirects_ingest_to_primary(tmp_path):
    primary = _primary(tmp_path)
    replica = _replica(tmp_path)
    try:
        replica.start()
        spec = LoadSpec(duration_s=0.4, rate_qps=40, seed=1, n_sources=4,
                        ingest_every_s=0.15)
        report = run_load(replica.service, spec, primary=primary)
        r = report.results
        assert not report.degraded
        assert r["role"] == "follower"
        assert r["redirects"] >= 1 and r["ingests"] == 0
        assert "redirects" in report.format_table()
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


def test_failover_drill_zero_loss_and_parity(tmp_path):
    report = run_failover_drill(
        tmp_path / "wal", failover_at_epoch=2, algos=["bfs"],
    )
    assert report.ok, report.format_table()
    assert report.lost_deltas == 0
    assert report.zombie_fenced
    assert report.new_fence_token > report.old_fence_token
    assert report.orphan_segments == []
    table = report.format_table()
    assert "PASS" in table and "zombie append fenced" in table


def test_replica_tail_thread_converges_without_manual_polls(tmp_path):
    primary = _primary(tmp_path)
    replica = _replica(tmp_path, poll_interval_s=0.02)
    try:
        primary.ingest("PK", seed=1)
        replica.start()  # background tailer
        primary.ingest("PK", seed=2)
        deadline = time.monotonic() + 30
        while (replica.service.epoch("PK") < 2
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert replica.service.epoch("PK") == 2
    finally:
        replica.stop(drain=False)
        primary.stop(drain=False)


# -- CLI -------------------------------------------------------------------


@pytest.mark.parametrize(
    "argv",
    [
        ["serve", "--follow", "somewhere", "--wal-dir", "elsewhere"],
        ["serve-bench", "--failover-at-epoch", "-1"],
        ["serve-bench", "--crash-at-epoch", "1", "--failover-at-epoch", "1"],
    ],
)
def test_cli_replica_bad_arguments_exit_2(argv, capsys):
    assert main(argv) == 2
    assert capsys.readouterr().err.strip()


def test_cli_failover_drill_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_failover.json"
    rc = main([
        "serve-bench", "--scale", "tiny", "--snapshots", "4",
        "--workers", "1", "--failover-at-epoch", "2", "--algos", "bfs",
        "--wal-dir", str(tmp_path / "wal"), "--out", str(out),
    ])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out
    import json

    doc = json.loads(out.read_text())
    assert doc["drill"] == "failover"
    assert doc["results"]["ok"] and doc["results"]["lost_deltas"] == 0
