"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    attach_weights,
    chain_edges,
    grid_edges,
    rmat_edges,
    uniform_edges,
)


@pytest.mark.parametrize("gen", [rmat_edges, uniform_edges])
def test_exact_edge_count(gen):
    e = gen(128, 1000, seed=3)
    assert len(e) == 1000


@pytest.mark.parametrize("gen", [rmat_edges, uniform_edges])
def test_no_self_loops_no_duplicates(gen):
    e = gen(100, 800, seed=5)
    assert np.all(e.src != e.dst)
    assert e.has_unique_pairs()


@pytest.mark.parametrize("gen", [rmat_edges, uniform_edges])
def test_deterministic_by_seed(gen):
    a = gen(64, 256, seed=9)
    b = gen(64, 256, seed=9)
    assert a.as_tuples() == b.as_tuples()
    c = gen(64, 256, seed=10)
    assert a.as_tuples() != c.as_tuples()


def test_rmat_is_skewed():
    """Power-law: max out-degree should far exceed the mean."""
    e = rmat_edges(512, 8192, seed=2)
    deg = np.bincount(e.src, minlength=512)
    assert deg.max() > 4 * deg.mean()


def test_uniform_is_not_extremely_skewed():
    e = uniform_edges(512, 8192, seed=2)
    deg = np.bincount(e.src, minlength=512)
    assert deg.max() < 4 * deg.mean()


def test_weights_in_range():
    e = rmat_edges(64, 512, seed=0, weight_high=8.0)
    assert e.wt.min() >= 1.0
    assert e.wt.max() < 8.0


def test_attach_weights_rejects_below_one():
    e = chain_edges(4)
    with pytest.raises(ValueError):
        attach_weights(e, np.random.default_rng(0), low=0.5)


def test_rmat_validates_probabilities():
    with pytest.raises(ValueError):
        rmat_edges(16, 32, a=0.5, b=0.3, c=0.3)
    with pytest.raises(ValueError):
        rmat_edges(1, 0)


def test_uniform_rejects_impossible_edge_count():
    with pytest.raises(ValueError):
        uniform_edges(4, 100)


def test_chain_structure():
    e = chain_edges(5, weight=2.0)
    assert [(s, d) for s, d, _ in e.as_tuples()] == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert np.all(e.wt == 2.0)


def test_grid_structure():
    e = grid_edges(2, 3)
    pairs = {(s, d) for s, d, _ in e.as_tuples()}
    # 2x3 grid: right edges within rows + down edges between rows
    assert (0, 1) in pairs and (1, 2) in pairs
    assert (0, 3) in pairs and (2, 5) in pairs
    assert len(pairs) == 2 * 2 + 3  # 4 right + 3 down
