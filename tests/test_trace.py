"""Unit tests for the trace layer (RoundTrace / ExecutionTrace / collector)."""

import numpy as np

from repro.engines.trace import ExecutionTrace, RoundTrace, TraceCollector


def rt(events=4, generated=10, edges=10, writes=3, dsts=(1, 2), phase="add"):
    return RoundTrace(
        phase=phase,
        events_popped=events,
        events_generated=generated,
        edges_fetched=edges,
        edge_blocks=np.array([0, 1]),
        vertex_reads=events + generated,
        vertex_writes=writes,
        n_versions=1,
        dst_vertices=np.array(dsts),
        src_vertices=np.array([0]),
        version_events_popped=events,
        version_events_generated=generated,
        version_vertex_writes=writes,
    )


def test_execution_trace_aggregates():
    e = ExecutionTrace("t", "add", (0,), [rt(), rt(events=6, generated=2)])
    assert e.events_popped == 10
    assert e.events_generated == 12
    assert e.edges_fetched == 20
    assert e.vertex_writes == 6
    assert e.vertex_reads == (4 + 10) + (6 + 2)
    assert e.n_rounds == 2
    assert e.events_per_round() == [4, 6]


def test_collector_begin_round_end_flow():
    c = TraceCollector(n_union_edges=8, n_vertices=10)
    c.begin("x", "add", (0, 1))
    c.round(rt(dsts=(3, 4)), np.array([0, 1]))
    c.round(rt(dsts=(4, 5)), np.array([2]))
    done = c.end()
    assert done.tag == "x"
    assert done.targets == (0, 1)
    assert done.touched_dst_count == 3  # {3, 4, 5}
    assert not c.active


def test_touched_dst_union_semantics():
    c = TraceCollector(n_union_edges=4, n_vertices=10)
    c.begin("x", "add", (0,))
    c.round(rt(dsts=(1, 2)))
    c.round(rt(dsts=(2, 3)))
    done = c.end()
    assert done.touched_dst_count == 3  # {1, 2, 3}


def test_touched_edges_only_when_enabled():
    c = TraceCollector(n_union_edges=6, record_touched_edges=True)
    c.begin("x", "add", (0,))
    c.round(rt(), np.array([1, 4]))
    done = c.end()
    assert done.touched_edges.tolist() == [False, True, False, False, True, False]

    c2 = TraceCollector(n_union_edges=6)
    c2.begin("x", "add", (0,))
    c2.round(rt(), np.array([1]))
    assert c2.end().touched_edges is None


def test_collector_totals_and_phase_filter():
    c = TraceCollector(4)
    c.begin("a", "add", (0,))
    c.round(rt())
    c.end()
    c.begin("b", "del", (0,))
    c.round(rt(generated=100))
    c.end()
    assert c.total("events_generated") == 110
    assert [e.tag for e in c.by_phase("del")] == ["b"]
    assert [e.tag for e in c.by_phase("add")] == ["a"]


def test_touched_dst_reset_between_executions():
    c = TraceCollector(4, n_vertices=8)
    c.begin("a", "add", (0,))
    c.round(rt(dsts=(1, 2, 3)))
    first = c.end()
    c.begin("b", "add", (0,))
    c.round(rt(dsts=(7,)))
    second = c.end()
    assert first.touched_dst_count == 3
    assert second.touched_dst_count == 1
