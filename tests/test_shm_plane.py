"""Shared-memory scenario plane: lifecycle, zero-copy, crash hygiene.

The plane (`repro.service.shm`) is the tentpole of the zero-copy path:
the coordinator publishes each live scenario once and workers attach
read-only views instead of replaying the ingest log.  These tests pin
the contract pieces the service leans on — round-trip fidelity, the
no-copy attach, refcounted retirement, orphan sweeping by PID liveness,
the worker-side attach cache, and end-to-end shm-vs-copy parity through
a real process-pool service.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.service.shm import (
    SEGMENT_PREFIX,
    SHM_DIR,
    ScenarioPlane,
    attach_scenario,
    list_orphan_segments,
    sweep_orphan_segments,
)


def _segment_path(manifest) -> str:
    return os.path.join(SHM_DIR, manifest.segment)


def _plane(scenario, epoch=0):
    plane = ScenarioPlane()
    manifest = plane.publish(scenario, "small", "test", epoch=epoch)
    return plane, manifest


# -- publish / attach round trip -------------------------------------------


def test_attach_round_trips_every_array(small_scenario):
    plane, manifest = _plane(small_scenario)
    try:
        shm, attached = attach_scenario(manifest)
        u, v = small_scenario.unified, attached.unified
        assert np.array_equal(u.graph.indptr, v.graph.indptr)
        assert np.array_equal(u.graph.dst, v.graph.dst)
        assert np.array_equal(u.graph.wt, v.graph.wt)
        assert np.array_equal(u.add_step, v.add_step)
        assert np.array_equal(u.del_step, v.del_step)
        assert np.array_equal(u.presence_planes(), v.presence_planes())
        assert attached.source == small_scenario.source
        assert attached.n_snapshots == small_scenario.n_snapshots
        del attached, u, v
        shm.close()
    finally:
        plane.close_all()


def test_attach_is_zero_copy_and_read_only(small_scenario):
    """Attached arrays are views over the segment, not copies."""
    plane, manifest = _plane(small_scenario)
    try:
        shm, attached = attach_scenario(manifest)
        for arr in (
            attached.unified.graph.dst,
            attached.unified.graph.indptr,
            attached.unified.presence_planes(),
        ):
            assert not arr.flags.owndata
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[..., 0] = 0
        del attached
        shm.close()
    finally:
        plane.close_all()


def test_manifest_records_segment_layout(small_scenario):
    plane, manifest = _plane(small_scenario, epoch=3)
    try:
        assert manifest.segment.startswith(f"{SEGMENT_PREFIX}{os.getpid()}-")
        assert manifest.epoch == 3
        assert manifest.n_vertices == small_scenario.n_vertices
        names = [spec.name for spec in manifest.arrays]
        assert names == [
            "indptr", "dst", "wt", "add_step", "del_step", "planes",
        ]
        assert all(spec.offset % 64 == 0 for spec in manifest.arrays)
        assert os.path.getsize(_segment_path(manifest)) >= manifest.nbytes
    finally:
        plane.close_all()


def test_attach_missing_segment_raises(small_scenario):
    plane, manifest = _plane(small_scenario)
    plane.close_all()
    with pytest.raises(FileNotFoundError):
        attach_scenario(manifest)


# -- refcounted lifecycle --------------------------------------------------


def test_acquire_matches_epoch_only(small_scenario):
    plane, manifest = _plane(small_scenario, epoch=2)
    try:
        got = plane.acquire("small", "test", small_scenario.n_snapshots, 2)
        assert got is not None and got.segment == manifest.segment
        plane.release(got)
        assert plane.acquire(
            "small", "test", small_scenario.n_snapshots, 5
        ) is None
        assert plane.acquire(
            "other", "test", small_scenario.n_snapshots, 2
        ) is None
        assert plane.current_epoch(
            "small", "test", small_scenario.n_snapshots
        ) == 2
    finally:
        plane.close_all()


def test_republish_retires_idle_segment_immediately(small_scenario):
    plane, old = _plane(small_scenario, epoch=0)
    try:
        new = plane.publish(small_scenario, "small", "test", epoch=1)
        assert not os.path.exists(_segment_path(old))
        assert os.path.exists(_segment_path(new))
        assert plane.stats()["retired"] == 1
    finally:
        plane.close_all()


def test_retired_segment_survives_until_release(small_scenario):
    """A generation bump must not unlink under an in-flight plan."""
    plane, old = _plane(small_scenario, epoch=0)
    try:
        held = plane.acquire("small", "test", small_scenario.n_snapshots, 0)
        assert held is not None
        plane.publish(small_scenario, "small", "test", epoch=1)
        assert os.path.exists(_segment_path(old))  # refs keep it alive
        plane.release(held)
        assert not os.path.exists(_segment_path(old))
    finally:
        plane.close_all()


def test_close_all_unlinks_everything(small_scenario):
    plane, first = _plane(small_scenario, epoch=0)
    second = plane.publish(small_scenario, "small", "other", epoch=0)
    plane.close_all()
    assert not os.path.exists(_segment_path(first))
    assert not os.path.exists(_segment_path(second))
    plane.close_all()  # idempotent


# -- orphan sweeping -------------------------------------------------------


def _dead_pid() -> int:
    pid = 4_000_000  # near the default pid_max ceiling
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except PermissionError:
            pass
        pid -= 1


def test_sweep_reclaims_dead_owner_segments(tmp_path):
    shm_dir = str(tmp_path)
    dead = f"{SEGMENT_PREFIX}{_dead_pid()}-1"
    alive = f"{SEGMENT_PREFIX}{os.getpid()}-1"
    for name in (dead, alive, "unrelated-file"):
        (tmp_path / name).write_bytes(b"x")
    assert list_orphan_segments(shm_dir) == [dead]
    assert sweep_orphan_segments(shm_dir) == [dead]
    assert not (tmp_path / dead).exists()
    assert (tmp_path / alive).exists()  # live owner: untouched
    assert (tmp_path / "unrelated-file").exists()  # non-plane: untouched
    assert sweep_orphan_segments(shm_dir) == []


# -- worker-side attach cache ----------------------------------------------


def test_worker_attach_cache_and_fallback(small_scenario):
    from repro.service import pool

    plane, manifest = _plane(small_scenario)
    try:
        first = pool._attached_scenario(manifest)
        assert first is not None
        assert pool._attached_scenario(manifest) is first  # cached
        pool._detach_all()
        assert pool._ATTACHED == {}
        # segment gone mid-flight: attach degrades to None (replay path)
        plane.close_all()
        assert pool._attached_scenario(manifest) is None
    finally:
        pool._detach_all()
        plane.close_all()


# -- end-to-end: shm workers vs copy workers -------------------------------


@pytest.mark.parametrize("use_shm", [True, False])
def test_service_parity_across_shm_modes(use_shm):
    """The same queries + ingest chain produce identical digests whether
    workers attach the plane or replay the scenario (``--no-shm``)."""
    from repro.service import QueryRequest, QueryService, ServiceConfig

    config = ServiceConfig(
        scale="tiny", n_snapshots=4, workers=1,
        coalesce_ms=2.0, use_shm=use_shm,
    )
    digests = []
    with QueryService(config) as service:
        assert service.health()["shm"]["enabled"] is use_shm
        service.ingest("PK", seed=1)
        for source in (1, 2, 3):
            resp = service.submit(
                QueryRequest("PK", "sssp", source)
            ).wait(timeout=120)
            assert resp is not None and resp.status == "ok"
            digests.append(
                [(s.snapshot, s.reached, s.checksum) for s in resp.summaries]
            )
        if use_shm:
            assert service.health()["shm"]["published"] >= 1
    # stash per-mode digests on the function and compare once both ran
    store = test_service_parity_across_shm_modes.__dict__.setdefault(
        "digests", {}
    )
    store[use_shm] = digests
    if len(store) == 2:
        assert store[True] == store[False]


def test_no_segments_leak_after_service_stop():
    from repro.service import QueryRequest, QueryService, ServiceConfig

    mine = f"{SEGMENT_PREFIX}{os.getpid()}-"
    config = ServiceConfig(
        scale="tiny", n_snapshots=4, workers=1, coalesce_ms=2.0,
    )
    with QueryService(config) as service:
        resp = service.submit(QueryRequest("PK", "sssp", 1)).wait(timeout=120)
        assert resp is not None and resp.status == "ok"
    leftovers = [n for n in os.listdir(SHM_DIR) if n.startswith(mine)]
    assert leftovers == []
