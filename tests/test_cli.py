"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table4" in out
    assert "Wen" in out
    assert "tiny" in out


def test_run_single_experiment(capsys):
    assert main(["run", "table5"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert "Queue" in out


def test_run_fig3_tiny(capsys):
    assert main(["run", "fig3", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 3" in out
    assert "dh/stream" in out


def test_simulate_jetstream_only(capsys):
    rc = main(
        [
            "simulate",
            "--graph",
            "PK",
            "--algo",
            "bfs",
            "--workflow",
            "jetstream",
            "--snapshots",
            "4",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "jetstream/streaming" in out
    assert "speedup" not in out


def test_simulate_boe_with_validation(capsys):
    rc = main(
        [
            "simulate",
            "--graph",
            "PK",
            "--algo",
            "sssp",
            "--workflow",
            "boe",
            "--pipeline",
            "--snapshots",
            "4",
            "--validate",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "boe+bp" in out
    assert "speedup over JetStream" in out


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig99"])


def test_parser_rejects_unknown_workflow():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--workflow", "bogus"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_track_command(capsys):
    rc = main(["track", "--graph", "PK", "--algo", "bfs", "--snapshots", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "reach" in out and "churn" in out


def test_run_json_format(capsys):
    assert main(["run", "table5", "--format", "json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "Table 5"
    assert payload["rows"]


def test_run_csv_format(capsys):
    assert main(["run", "fig3", "--scale", "tiny", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("graph,")


def test_inspect_command(capsys):
    rc = main(["inspect", "--graph", "LJ", "--snapshots", "6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "common graph" in out
    assert "livejournal" in out
    assert "snapshot sizes" in out


def test_report_command(tmp_path, capsys):
    import os

    out = tmp_path / "report.md"
    os.environ["REPRO_SCALE"] = "tiny"
    try:
        rc = main(["report", "--out", str(out), "--scale", "tiny"])
    finally:
        os.environ.pop("REPRO_SCALE", None)
    assert rc == 0
    text = out.read_text()
    assert "# MEGA reproduction report" in text
    assert "## Summary" in text
    assert "## Table 4" in text
    assert "## Ext. energy" in text
