"""Shared fixtures: small deterministic scenarios and algorithm instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import all_algorithms
from repro.evolving import synthesize_scenario
from repro.graph.generators import rmat_edges, uniform_edges


@pytest.fixture(scope="session")
def small_pool():
    """A deterministic power-law edge pool (256 vertices, 2048 edges)."""
    return rmat_edges(n_vertices=256, n_edges=2048, seed=7)


@pytest.fixture(scope="session")
def small_scenario(small_pool):
    """8 snapshots over the small pool, 2% batches."""
    return synthesize_scenario(
        small_pool, n_snapshots=8, batch_pct=0.02, seed=3, name="small"
    )


@pytest.fixture(scope="session")
def tiny_scenario():
    """4 snapshots over a tiny uniform pool — fast integration checks."""
    pool = uniform_edges(n_vertices=64, n_edges=512, seed=11)
    return synthesize_scenario(pool, n_snapshots=4, batch_pct=0.05, seed=5)


@pytest.fixture(params=[a.name for a in all_algorithms()])
def algorithm(request):
    """Parametrize a test over all five paper algorithms."""
    from repro.algorithms import get_algorithm

    return get_algorithm(request.param)


def scenario_like(n_vertices=128, n_edges=1024, n_snapshots=6, seed=0, **kw):
    """Helper for tests that need custom scenarios."""
    pool = rmat_edges(n_vertices=n_vertices, n_edges=n_edges, seed=seed)
    return synthesize_scenario(pool, n_snapshots=n_snapshots, seed=seed, **kw)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
