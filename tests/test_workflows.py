"""Integration tests: every workflow produces ground-truth snapshot values.

This is the reproduction's core correctness gate — the paper's §5.1
validation ("we validated the final results of MEGA executions against
those of the software baselines"), strengthened to an exact comparison with
independent from-scratch evaluation on every snapshot.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.engines import PlanExecutor
from repro.engines.validation import evaluate_reference, validate_workflow
from repro.evolving import synthesize_scenario
from repro.graph.generators import rmat_edges, uniform_edges
from repro.schedule import (
    boe_plan,
    direct_hop_plan,
    streaming_plan,
    work_sharing_plan,
)

ALL_PLANS = [streaming_plan, direct_hop_plan, work_sharing_plan, boe_plan]


@pytest.mark.parametrize("factory", ALL_PLANS, ids=lambda f: f.__name__)
def test_workflow_matches_ground_truth(small_scenario, algorithm, factory):
    executor = PlanExecutor(small_scenario, algorithm)
    result = executor.run(factory(small_scenario.unified))
    validate_workflow(small_scenario, algorithm, result)


@pytest.mark.parametrize("factory", ALL_PLANS, ids=lambda f: f.__name__)
def test_workflow_on_uniform_graph(factory):
    pool = uniform_edges(96, 768, seed=21)
    scenario = synthesize_scenario(pool, n_snapshots=5, batch_pct=0.04, seed=8)
    algo = get_algorithm("sswp")
    result = PlanExecutor(scenario, algo).run(factory(scenario.unified))
    validate_workflow(scenario, algo, result)


@pytest.mark.parametrize("factory", ALL_PLANS, ids=lambda f: f.__name__)
def test_workflow_imbalanced_batches(factory):
    pool = rmat_edges(128, 1024, seed=13)
    scenario = synthesize_scenario(
        pool, n_snapshots=6, batch_pct=0.03, imbalance=4.0, seed=17
    )
    algo = get_algorithm("sssp")
    result = PlanExecutor(scenario, algo).run(factory(scenario.unified))
    validate_workflow(scenario, algo, result)


def test_all_workflows_agree(tiny_scenario, algorithm):
    """Cross-check: all four workflows produce identical snapshot values."""
    results = [
        PlanExecutor(tiny_scenario, algorithm).run(f(tiny_scenario.unified))
        for f in ALL_PLANS
    ]
    for k in range(tiny_scenario.n_snapshots):
        base = results[0].values(k)
        for r in results[1:]:
            assert np.allclose(base, r.values(k), equal_nan=True)


def test_boe_fetches_fewer_edges_than_direct_hop(small_scenario):
    """Fig. 16 shape: BOE's shared fetches beat Direct-Hop's repetition."""
    algo = get_algorithm("sssp")
    dh = PlanExecutor(small_scenario, algo).run(
        direct_hop_plan(small_scenario.unified)
    )
    boe = PlanExecutor(small_scenario, algo).run(
        boe_plan(small_scenario.unified)
    )
    assert boe.collector.total("edges_fetched") < dh.collector.total(
        "edges_fetched"
    )


def test_streaming_collects_deletion_stats(small_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(small_scenario, algo).run(
        streaming_plan(small_scenario.unified)
    )
    assert len(result.deletion_stats) == small_scenario.n_snapshots - 1


def test_validation_detects_corruption(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    result.snapshot_values[1][0] += 1.0
    with pytest.raises(AssertionError):
        validate_workflow(tiny_scenario, algo, result)


def test_validation_detects_missing_snapshot(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    del result.snapshot_values[2]
    with pytest.raises(AssertionError):
        validate_workflow(tiny_scenario, algo, result)


def test_reference_evaluation_is_deterministic(tiny_scenario):
    algo = get_algorithm("viterbi")
    a = evaluate_reference(tiny_scenario, algo, 1)
    b = evaluate_reference(tiny_scenario, algo, 1)
    assert np.array_equal(a, b)


def test_touched_edges_recorded_when_enabled(small_scenario):
    algo = get_algorithm("bfs")
    executor = PlanExecutor(small_scenario, algo, record_touched_edges=True)
    result = executor.run(boe_plan(small_scenario.unified))
    for e in result.collector.executions:
        assert e.touched_edges is not None
        assert e.touched_edges.shape == (small_scenario.unified.n_union_edges,)
    # the common-graph evaluation touches at least the common edges it used
    assert result.collector.executions[0].touched_edges.any()
