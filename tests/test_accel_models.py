"""Tests for the accelerator component models: cache, memory, NoC, power."""

import numpy as np
import pytest

from repro.accel.cache import EdgeCacheModel
from repro.accel.config import MB, mega_config
from repro.accel.memory import MemorySystem
from repro.accel.noc import CrossbarNoC
from repro.accel.power import PowerAreaModel, table5_breakdown
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges


# -- edge cache ---------------------------------------------------------------


def test_cache_cold_misses():
    c = EdgeCacheModel(capacity_blocks=4, n_blocks=100)
    hits, misses = c.access_round(np.array([1, 2, 3]))
    assert (hits, misses) == (0, 3)


def test_cache_hits_within_capacity():
    c = EdgeCacheModel(capacity_blocks=8, n_blocks=100)
    c.access_round(np.array([1, 2, 3]))
    hits, misses = c.access_round(np.array([1, 2, 3]))
    assert (hits, misses) == (3, 0)


def test_cache_evicts_beyond_capacity():
    c = EdgeCacheModel(capacity_blocks=4, n_blocks=100)
    c.access_round(np.array([0, 1]))
    c.access_round(np.array([10, 11, 12, 13, 14, 15]))  # push 0,1 out
    hits, misses = c.access_round(np.array([0, 1]))
    assert hits == 0 and misses == 2


def test_cache_flush():
    c = EdgeCacheModel(capacity_blocks=8, n_blocks=50)
    c.access_round(np.array([1, 2]))
    c.flush()
    hits, __ = c.access_round(np.array([1, 2]))
    assert hits == 0


def test_cache_hit_rate():
    c = EdgeCacheModel(capacity_blocks=8, n_blocks=50)
    assert c.hit_rate == 0.0
    c.access_round(np.array([1]))
    c.access_round(np.array([1]))
    assert c.hit_rate == 0.5


def test_cache_empty_round():
    c = EdgeCacheModel(capacity_blocks=8, n_blocks=50)
    assert c.access_round(np.empty(0, dtype=np.int64)) == (0, 0)


def test_cache_rejects_negative_capacity():
    with pytest.raises(ValueError):
        EdgeCacheModel(capacity_blocks=-1, n_blocks=10)


# -- memory system ------------------------------------------------------------


@pytest.fixture
def wen_like_memory():
    """A memory system scaled like Wikipedia-En: 13M vertices at 1/1000."""
    g = CSRGraph.from_edges(rmat_edges(13_000, 100_000, seed=1))
    cfg = mega_config(capacity_scale=13_000 / 13_000_000)
    return MemorySystem(cfg, g)


def test_livejournal_needs_four_partitions():
    """The paper's §5.2 example: 16 snapshots of LJ (4M vertices) against
    64 MB on-chip memory require four partitions."""
    g = CSRGraph.from_edges(rmat_edges(4_000, 10_000, seed=0))
    cfg = mega_config(capacity_scale=4_000 / 4_000_000)
    mem = MemorySystem(cfg, g)
    assert mem.n_partitions(16) == 4
    assert mem.n_partitions(1) == 1  # JetStream needs no partitioning


def test_wen_partition_counts(wen_like_memory):
    assert wen_like_memory.n_partitions(16) == 13
    assert wen_like_memory.n_partitions(1) == 1


def test_state_bytes_scale_with_versions(wen_like_memory):
    assert wen_like_memory.state_bytes(8) == 2 * wen_like_memory.state_bytes(4)


def test_partition_plan_single_has_no_overheads(wen_like_memory):
    plan = wen_like_memory.partition_plan(1)
    assert plan.n_partitions == 1
    assert plan.sweep_bytes == 0.0
    assert plan.cross_fraction == 0.0


def test_partition_plan_cross_fraction_bounds(wen_like_memory):
    plan = wen_like_memory.partition_plan(16)
    assert 0.0 < plan.cross_fraction <= 1.0


def test_dram_cycles_bandwidth():
    g = CSRGraph.from_tuples(2, [(0, 1)])
    cfg = mega_config()
    mem = MemorySystem(cfg, g)
    # 4 x 17 GB/s at 1 GHz = 68 bytes/cycle
    assert mem.dram_cycles(680.0) == pytest.approx(10.0)


def test_onchip_capacity_scaling():
    cfg = mega_config(capacity_scale=0.001)
    assert cfg.onchip_bytes == pytest.approx(64 * MB * 0.001)


# -- NoC ------------------------------------------------------------------------


def test_noc_throughput():
    noc = CrossbarNoC(mega_config())
    assert noc.peak_messages_per_cycle == 16
    assert noc.cycles(160) == pytest.approx(10.0)
    assert noc.cycles(0) == 0.0


def test_noc_generator_sharing():
    noc = CrossbarNoC(mega_config())
    # 32 generators over 16 ports -> 2 share each port
    assert noc.generators_per_port == 2


# -- power / area (Table 5) -----------------------------------------------------


def test_table5_totals_match_paper():
    """Total power ~9532 mW and area ~203 mm^2 (Table 5, within 5%)."""
    total = table5_breakdown()[-1]
    assert total.total_mw == pytest.approx(9532, rel=0.05)
    assert total.area_mm2 == pytest.approx(203, rel=0.05)


def test_table5_queue_dominates():
    rows = table5_breakdown()
    queue = rows[0]
    assert queue.total_mw == pytest.approx(9389, rel=0.05)
    assert queue.area_mm2 == pytest.approx(195, rel=0.05)


def test_power_scales_with_memory():
    small = PowerAreaModel(mega_config().with_onchip_mb(16)).total()
    big = PowerAreaModel(mega_config().with_onchip_mb(64)).total()
    assert big.total_mw > small.total_mw
    assert big.area_mm2 > small.area_mm2


def test_mega_overhead_over_jetstream_is_small_and_positive():
    """Table 5: MEGA costs ~6.8% more power and ~2% more area."""
    over = PowerAreaModel(mega_config()).overhead_over_jetstream()
    power_pct, area_pct = over["Total"]
    assert 0 < power_pct < 15
    assert 0 < area_pct < 10


def test_network_overhead_from_wider_events():
    over = PowerAreaModel(mega_config()).overhead_over_jetstream()
    power_pct, area_pct = over["Network"]
    assert power_pct > 5  # wider flits cost real power
    assert area_pct > 5
