"""Budgets, watchdogs, retry taxonomy, checkpoint/resume, degradation."""

import json

import numpy as np
import pytest

from repro.accel.eventsim import EventLevelSimulator
from repro.algorithms import SSSP, get_algorithm
from repro.engines import MultiVersionEngine, PlanExecutor
from repro.evolving.unified_csr import UnifiedCSR
from repro.experiments.runner import ExperimentResult, LRUCache
from repro.graph.csr import CSRGraph
from repro.resilience import (
    Budget,
    BudgetExceeded,
    FatalError,
    RunCheckpoint,
    TransientError,
    retry_with_backoff,
)
from repro.schedule import boe_plan


def make_static(graph: CSRGraph) -> UnifiedCSR:
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


def chain_graph(n: int) -> CSRGraph:
    """A long path 0 -> 1 -> ... -> n-1: one frontier hop per round, so an
    under-provisioned round budget must trip before convergence."""
    return CSRGraph.from_tuples(n, [(i, i + 1, 1.0) for i in range(n - 1)])


# -- budgets and watchdogs ----------------------------------------------------


def test_eventsim_round_budget_terminates_adversarial_run():
    g = chain_graph(200)
    sim = EventLevelSimulator(SSSP(), make_static(g))
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    with pytest.raises(BudgetExceeded) as exc_info:
        sim.run(budget=Budget(max_rounds=10))
    exc = exc_info.value
    assert exc.resource == "rounds"
    assert exc.limit == 10
    assert exc.spent > exc.limit
    # partial stats survive the breach for diagnosis
    assert exc.stats is not None and exc.stats.rounds == 10


def test_eventsim_event_budget():
    g = chain_graph(100)
    sim = EventLevelSimulator(SSSP(), make_static(g))
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    with pytest.raises(BudgetExceeded, match="event budget"):
        sim.run(budget=Budget(max_events=5))


def test_eventsim_legacy_max_rounds_still_raises_runtimeerror():
    g = chain_graph(50)
    sim = EventLevelSimulator(SSSP(), make_static(g))
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    with pytest.raises(RuntimeError):
        sim.run(max_rounds=2)


def test_eventsim_unbudgeted_run_unaffected():
    g = chain_graph(30)
    sim = EventLevelSimulator(SSSP(), make_static(g))
    sim.set_graph(0, np.ones(g.n_edges, dtype=bool))
    sim.set_source(0)
    values = sim.run()
    assert np.allclose(values[0], np.arange(30, dtype=float))


def test_wall_clock_deadline_uses_injected_clock():
    now = [0.0]
    clock = lambda: now[0]  # noqa: E731
    meter = Budget(wall_clock_s=5.0).start(clock=clock)
    meter.charge(rounds=1)
    now[0] = 5.5
    with pytest.raises(BudgetExceeded) as exc_info:
        meter.charge(rounds=1)
    assert exc_info.value.resource == "wall_clock"
    assert exc_info.value.spent == pytest.approx(5.5)


def test_engine_budget_caps_propagation():
    g = chain_graph(300)
    engine = MultiVersionEngine(
        SSSP(), make_static(g), budget=Budget(max_rounds=20)
    )
    with pytest.raises(BudgetExceeded) as exc_info:
        engine.evaluate_full(np.ones(g.n_edges, dtype=bool), 0)
    assert exc_info.value.resource == "rounds"


def test_executor_budget_flows_to_engine(tiny_scenario):
    with pytest.raises(BudgetExceeded):
        PlanExecutor(
            tiny_scenario, get_algorithm("sssp"), budget=Budget(max_rounds=1)
        ).run(boe_plan(tiny_scenario.unified))


# -- retry taxonomy -----------------------------------------------------------


def test_retry_recovers_from_transient_failures():
    sleeps = []
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientError("hiccup")
        return "ok"

    assert (
        retry_with_backoff(
            flaky, retries=3, base_delay=0.5, sleep=sleeps.append
        )
        == "ok"
    )
    assert len(calls) == 3
    assert sleeps == [0.5, 1.0]  # exponential backoff


def test_retry_gives_up_after_budgeted_attempts():
    sleeps = []

    def always():
        raise TransientError("still down")

    with pytest.raises(TransientError):
        retry_with_backoff(always, retries=2, sleep=sleeps.append)
    assert len(sleeps) == 2


@pytest.mark.parametrize(
    "error",
    [
        FatalError("deterministic"),
        BudgetExceeded("deadline", resource="rounds", limit=1, spent=2),
        ValueError("not in the transient set"),
    ],
    ids=["fatal", "budget", "other"],
)
def test_retry_propagates_non_transient_immediately(error):
    calls = []

    def doomed():
        calls.append(1)
        raise error

    with pytest.raises(type(error)):
        retry_with_backoff(doomed, retries=5, sleep=lambda s: None)
    assert len(calls) == 1


# -- checkpoint/resume --------------------------------------------------------


def sample_result(name: str = "fig99") -> ExperimentResult:
    r = ExperimentResult(
        name=name,
        title="A made-up figure",
        headers=["graph", "speedup"],
        notes=["synthetic"],
    )
    r.add("PK", 2.5)
    r.add("LJ", np.float64(3.25))  # numpy scalars must serialize too
    return r


def test_checkpoint_round_trip(tmp_path):
    ckpt = RunCheckpoint(tmp_path / "run")
    assert not ckpt.has_result("fig99")
    ckpt.save_result("fig99", sample_result())
    assert ckpt.has_result("fig99")
    loaded = ckpt.load_result("fig99")
    assert loaded.name == "fig99"
    assert loaded.headers == ["graph", "speedup"]
    assert loaded.rows == [["PK", 2.5], ["LJ", 3.25]]
    assert loaded.notes == ["synthetic"]
    assert loaded.format_table() == sample_result().format_table()
    assert ckpt.completed() == ["fig99"]
    assert not list((tmp_path / "run").rglob("*.tmp"))  # atomic writes


def test_checkpoint_failures_cleared_by_success(tmp_path):
    ckpt = RunCheckpoint(tmp_path)
    ckpt.record_failure("fig99", ValueError("boom"), 1.234)
    failures = ckpt.failures()
    assert failures["fig99"]["error_type"] == "ValueError"
    assert failures["fig99"]["message"] == "boom"
    assert failures["fig99"]["elapsed_s"] == pytest.approx(1.234)
    ckpt.save_result("fig99", sample_result())  # success supersedes failure
    assert ckpt.failures() == {}


def test_checkpoint_sanitizes_names(tmp_path):
    ckpt = RunCheckpoint(tmp_path)
    path = ckpt.save_result("../evil name", sample_result())
    assert path.parent == ckpt.results_dir
    assert "/" not in path.stem and " " not in path.stem


def test_checkpoint_manifest_and_summary(tmp_path):
    ckpt = RunCheckpoint(tmp_path)
    ckpt.write_manifest(experiment="all", scale="tiny")
    assert ckpt.manifest() == {"experiment": "all", "scale": "tiny"}
    ckpt.write_summary({"a": "ok", "b": "failed", "c": "restored"})
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["n_ok"] == 2 and summary["n_failed"] == 1


# -- bounded harness caches ---------------------------------------------------


def test_lru_cache_bounds_and_recency():
    cache = LRUCache(2)
    cache["a"] = 1
    cache["b"] = 2
    assert cache["a"] == 1  # refresh "a"; "b" is now the oldest
    cache["c"] = 3
    assert "b" not in cache and "a" in cache and "c" in cache
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValueError):
        LRUCache(0)


def test_clear_caches_resets_harness_state():
    from repro.experiments import runner

    runner.scenario_cache("PK", "tiny", n_snapshots=4)
    assert len(runner._scenarios) > 0
    runner.clear_caches()
    assert len(runner._scenarios) == 0 and len(runner._reports) == 0


# -- CLI: validation, sweep isolation, resume ---------------------------------


def test_cli_rejects_unknown_graph(capsys):
    from repro.cli import main

    assert main(["simulate", "--graph", "NOPE"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "PK" in err


def test_cli_rejects_unknown_algo(capsys):
    from repro.cli import main

    assert main(["faults", "--algo", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown algorithm" in err and "SSSP" in err


def test_cli_rejects_unknown_fault_point(capsys):
    from repro.cli import main

    assert main(["faults", "--points", "bogus"]) == 2
    assert "unknown fault point" in capsys.readouterr().err


def test_cli_faults_campaign_smoke(capsys):
    from repro.cli import main

    rc = main(
        [
            "faults",
            "--scale",
            "tiny",
            "--snapshots",
            "3",
            "--points",
            "eventsim.drop-event",
            "executor.bitflip-value",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "fault campaign" in out
    assert "escaped 0" in out


def fake_sweep(monkeypatch, experiments):
    """Install a tiny fake experiment registry for sweep tests."""
    import repro.cli
    import repro.experiments

    monkeypatch.setattr(repro.experiments, "ALL_EXPERIMENTS", experiments)
    monkeypatch.setattr(repro.cli, "ALL_EXPERIMENTS", experiments)


def test_run_all_keeps_going_and_records_failures(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    def bad(scale=None):
        raise FatalError("rigged to fail")

    fake_sweep(
        monkeypatch,
        {
            "good": lambda scale=None: sample_result("good"),
            "bad": bad,
            "also-good": lambda scale=None: sample_result("also-good"),
        },
    )
    rc = main(["run", "all", "--scale", "tiny", "--run-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert rc == 1  # a failure surfaces in the exit code...
    assert "also-good" in captured.out  # ...but the sweep kept going
    assert "rigged to fail" in captured.err
    ckpt = RunCheckpoint(tmp_path)
    assert ckpt.completed() == ["also-good", "good"]
    assert ckpt.failures()["bad"]["error_type"] == "FatalError"


def test_run_all_no_keep_going_stops_at_first_failure(
    tmp_path, monkeypatch, capsys
):
    from repro.cli import main

    calls = []

    def bad(scale=None):
        raise FatalError("rigged")

    fake_sweep(
        monkeypatch,
        {
            "bad": bad,
            "later": lambda scale=None: calls.append(1) or sample_result(),
        },
    )
    rc = main(
        [
            "run", "all", "--scale", "tiny", "--no-keep-going",
            "--run-dir", str(tmp_path),
        ]
    )
    capsys.readouterr()
    assert rc == 1
    assert calls == []  # fail-fast: "later" never ran


def test_run_all_resume_skips_completed(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    counts = {"a": 0, "b": 0}

    def make(name):
        def run(scale=None):
            counts[name] += 1
            return sample_result(name)

        return run

    fake_sweep(monkeypatch, {"a": make("a"), "b": make("b")})
    assert main(
        ["run", "all", "--scale", "tiny", "--run-dir", str(tmp_path)]
    ) == 0
    first = capsys.readouterr().out
    assert counts == {"a": 1, "b": 1}

    # simulate a killed sweep: one result missing, then resume
    RunCheckpoint(tmp_path).result_path("b").unlink()
    assert main(
        [
            "run", "all", "--scale", "tiny", "--resume",
            "--run-dir", str(tmp_path),
        ]
    ) == 0
    second = capsys.readouterr().out
    assert counts == {"a": 1, "b": 2}  # only the missing one reran
    assert "restored from checkpoint" in second
    # the resumed sweep renders the same tables as the uninterrupted one
    strip = lambda s: [  # noqa: E731
        line for line in s.splitlines() if not line.startswith("[")
    ]
    assert strip(second) == strip(first)


# -- graceful degradation in the report ---------------------------------------


def test_report_degrades_past_failing_experiment(monkeypatch):
    import repro.experiments.report as report_mod

    experiments = {
        name: (
            (lambda scale=None: (_ for _ in ()).throw(ValueError("dead")))
            if name == "table4"
            else (lambda name=name: lambda scale=None: sample_result(name))()
        )
        for name in report_mod._ORDER
    }
    monkeypatch.setattr(report_mod, "ALL_EXPERIMENTS", experiments)
    text = report_mod.build_report(scale="tiny")
    assert "## table4 — FAILED" in text
    assert "ValueError: dead" in text
    assert "Degraded report" in text
    assert text.count("A made-up figure") == len(report_mod._ORDER) - 1
    with pytest.raises(ValueError):
        report_mod.build_report(scale="tiny", keep_going=False)
