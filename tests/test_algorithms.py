"""Unit tests for the five Table 1 algorithms and the Algorithm protocol."""

import numpy as np
import pytest

from repro.algorithms import (
    BFS,
    SSNP,
    SSSP,
    SSWP,
    Viterbi,
    all_algorithms,
    get_algorithm,
)
from repro.engines import MultiVersionEngine
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph


def make_static(graph: CSRGraph) -> UnifiedCSR:
    """Wrap a static graph as a single-snapshot unified CSR."""
    none = np.full(graph.n_edges, -1, dtype=np.int32)
    return UnifiedCSR(graph, none, none.copy(), 1)


def evaluate(algo, graph, source=0):
    u = make_static(graph)
    engine = MultiVersionEngine(algo, u)
    return engine.evaluate_full(np.ones(graph.n_edges, dtype=bool), source)


@pytest.fixture
def weighted_diamond():
    # 0 ->(1) 1 ->(4) 3 ;  0 ->(3) 2 ->(1) 3 ; 1 ->(1) 2
    return CSRGraph.from_tuples(
        4, [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 1.0), (1, 3, 4.0), (2, 3, 1.0)]
    )


def test_registry_contains_paper_algorithms():
    names = {a.name for a in all_algorithms()}
    assert names == {"BFS", "SSSP", "SSWP", "SSNP", "Viterbi"}


def test_get_algorithm_case_insensitive():
    assert get_algorithm("sssp").name == "SSSP"
    assert get_algorithm("VITERBI").name == "Viterbi"


def test_get_algorithm_unknown():
    with pytest.raises(KeyError):
        get_algorithm("pagerank")


def test_bfs_hops(weighted_diamond):
    vals = evaluate(BFS(), weighted_diamond)
    assert vals.tolist() == [0.0, 1.0, 1.0, 2.0]


def test_bfs_ignores_weights(weighted_diamond):
    assert BFS().uses_weights is False


def test_sssp_distances(weighted_diamond):
    vals = evaluate(SSSP(), weighted_diamond)
    # 0->1 = 1; 0->2 = min(3, 1+1) = 2; 0->3 = min(1+4, 2+1) = 3
    assert vals.tolist() == [0.0, 1.0, 2.0, 3.0]


def test_sswp_widths(weighted_diamond):
    vals = evaluate(SSWP(), weighted_diamond)
    # widest to 1: 1; to 2: max(min(3), min(1,1)) = 3; to 3: max(min(1,4), min(3,1)) = 1
    assert vals[0] == np.inf
    assert vals[1] == 1.0
    assert vals[2] == 3.0
    assert vals[3] == 1.0


def test_ssnp_narrowest(weighted_diamond):
    vals = evaluate(SSNP(), weighted_diamond)
    # narrowest(minimax) to 1: 1; to 2: min(3, max(1,1)) = 1; to 3: min(max(1,4), max(1,1,1)) = 1
    assert vals.tolist() == [0.0, 1.0, 1.0, 1.0]


def test_viterbi_probabilities(weighted_diamond):
    vals = evaluate(Viterbi(), weighted_diamond)
    # best to 1: 1/1; to 2: max(1/3, 1/1/1) = 1; to 3: max(1/4, 1/1) = 1
    assert vals[0] == 1.0
    assert vals[1] == 1.0
    assert vals[2] == 1.0
    assert vals[3] == 1.0


def test_viterbi_decreases_along_weighted_path():
    g = CSRGraph.from_tuples(3, [(0, 1, 2.0), (1, 2, 4.0)])
    vals = evaluate(Viterbi(), g)
    assert vals.tolist() == [1.0, 0.5, 0.125]


def test_unreachable_vertices_keep_identity():
    g = CSRGraph.from_tuples(3, [(0, 1, 2.0)])
    for algo in all_algorithms():
        vals = evaluate(algo, g)
        assert vals[2] == algo.identity


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_better_is_strict(algo):
    a = np.array([1.0, 2.0, 2.0])
    b = np.array([2.0, 1.0, 2.0])
    expected = [True, False, False] if algo.minimize else [False, True, False]
    assert algo.better(a, b).tolist() == expected


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_combine_matches_direction(algo):
    a = np.array([1.0, 5.0])
    b = np.array([3.0, 2.0])
    c = algo.combine(a, b)
    expected = np.minimum(a, b) if algo.minimize else np.maximum(a, b)
    assert c.tolist() == expected.tolist()


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_scatter_reduce_coalesces(algo):
    vals = np.full(3, algo.identity)
    idx = np.array([1, 1, 2])
    cand = np.array([5.0, 3.0, 4.0])
    algo.scatter_reduce(vals, idx, cand)
    assert vals[1] == (3.0 if algo.minimize else 5.0)
    assert vals[2] == 4.0
    assert vals[0] == algo.identity


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_source_value_is_stable(algo):
    """No candidate may improve the source value (weights >= 1)."""
    wt = np.array([1.0, 2.0, 16.0])
    val_u = np.full(3, algo.source_value)
    cand = algo.candidate(val_u, wt)
    assert not np.any(algo.better(cand, np.full(3, algo.source_value)))


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_identity_absorbs(algo):
    """Candidates computed from unreached vertices never improve anything."""
    wt = np.array([1.0, 4.0])
    cand = algo.candidate(np.full(2, algo.identity), wt)
    assert not np.any(algo.better(cand, np.full(2, algo.identity)))


@pytest.mark.parametrize("algo", all_algorithms(), ids=lambda a: a.name)
def test_initial_values(algo):
    vals = algo.initial_values(4, 2)
    assert vals[2] == algo.source_value
    assert all(vals[i] == algo.identity for i in (0, 1, 3))
    assert algo.reached(vals).tolist() == [False, False, True, False]


# -- analytic multi-path cases ---------------------------------------------------


@pytest.fixture
def two_route_graph():
    """Two routes 0->3: a short-hop heavy route and a long-hop light one.

    0 ->(9) 3              (1 hop,  weight 9)
    0 ->(2) 1 ->(2) 2 ->(2) 3   (3 hops, weights 2)
    """
    return CSRGraph.from_tuples(
        4,
        [(0, 3, 9.0), (0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)],
    )


def test_bfs_prefers_fewer_hops(two_route_graph):
    assert evaluate(BFS(), two_route_graph)[3] == 1.0


def test_sssp_prefers_lighter_total(two_route_graph):
    assert evaluate(SSSP(), two_route_graph)[3] == 6.0  # 2+2+2 < 9


def test_sswp_prefers_heavy_single_edge(two_route_graph):
    # widest: direct edge width 9 beats bottleneck 2 of the long route
    assert evaluate(SSWP(), two_route_graph)[3] == 9.0


def test_ssnp_prefers_light_edges(two_route_graph):
    # narrowest: minimax 2 on the long route beats 9 on the direct edge
    assert evaluate(SSNP(), two_route_graph)[3] == 2.0


def test_viterbi_prefers_fewer_divisions_when_heavy(two_route_graph):
    # 1/9 vs 1/(2*2*2) = 1/8: the long route wins (barely)
    assert evaluate(Viterbi(), two_route_graph)[3] == pytest.approx(1 / 8)


def test_algorithms_disagree_by_design(two_route_graph):
    """The five queries rank the two routes differently — the reason the
    paper evaluates all of them."""
    winners = {
        "BFS": evaluate(BFS(), two_route_graph)[3],
        "SSSP": evaluate(SSSP(), two_route_graph)[3],
        "SSWP": evaluate(SSWP(), two_route_graph)[3],
        "SSNP": evaluate(SSNP(), two_route_graph)[3],
        "Viterbi": evaluate(Viterbi(), two_route_graph)[3],
    }
    assert len(set(winners.values())) >= 4


def test_self_loop_edges_never_change_values():
    g = CSRGraph.from_tuples(3, [(0, 1, 2.0), (1, 1, 1.0), (1, 2, 2.0)])
    for algo in all_algorithms():
        vals = evaluate(algo, g)
        g2 = CSRGraph.from_tuples(3, [(0, 1, 2.0), (1, 2, 2.0)])
        vals2 = evaluate(algo, g2)
        assert np.allclose(vals, vals2, equal_nan=True), algo.name


def test_parallel_multipath_tie():
    """Two equal-cost routes: value is well-defined regardless of which
    wins internally."""
    g = CSRGraph.from_tuples(
        4, [(0, 1, 3.0), (0, 2, 3.0), (1, 3, 3.0), (2, 3, 3.0)]
    )
    assert evaluate(SSSP(), g)[3] == 6.0
    assert evaluate(SSWP(), g)[3] == 3.0
    assert evaluate(SSNP(), g)[3] == 3.0
