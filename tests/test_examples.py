"""The shipped examples must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 4  # quickstart + >=3 domain scenarios


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples should narrate their results"
