"""Failure injection: malformed inputs and corrupted state must be caught.

A reproduction's validation machinery is only trustworthy if it actually
fires; these tests corrupt values, traces, plans and inputs on purpose and
assert the library refuses or detects them rather than silently producing
wrong numbers.
"""

import numpy as np
import pytest

from repro.accel.simulate import build_waves
from repro.accel.memory import MemorySystem
from repro.accel.config import mega_config
from repro.algorithms import SSSP, get_algorithm
from repro.engines import (
    DeletionRepair,
    MultiVersionEngine,
    PlanExecutor,
    TraceCollector,
)
from repro.engines.validation import validate_workflow
from repro.evolving import synthesize_scenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.resilience import FAULT_POINTS
from repro.schedule import boe_plan, plan_for
from repro.schedule.plan import Plan


# -- corrupted results are detected ------------------------------------------


def test_validation_catches_single_vertex_corruption(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    result.snapshot_values[0][5] *= 2.0 if np.isfinite(
        result.snapshot_values[0][5]
    ) else 1.0
    result.snapshot_values[0][5] += 1.0
    with pytest.raises(AssertionError, match="wrong on snapshot 0"):
        validate_workflow(tiny_scenario, algo, result)


def test_validation_catches_swapped_snapshots(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    a = result.snapshot_values[0]
    b = result.snapshot_values[tiny_scenario.n_snapshots - 1]
    if np.allclose(a, b, equal_nan=True):
        pytest.skip("snapshots coincide for this seed")
    result.snapshot_values[0], result.snapshot_values[
        tiny_scenario.n_snapshots - 1
    ] = b, a
    with pytest.raises(AssertionError):
        validate_workflow(tiny_scenario, algo, result)


# -- malformed structural inputs ----------------------------------------------


def test_unified_rejects_wrong_tag_lengths():
    g = CSRGraph.from_tuples(3, [(0, 1), (1, 2)])
    with pytest.raises(ValueError):
        UnifiedCSR(g, np.array([-1]), np.array([-1, -1]), 2)


def test_executor_rejects_unknown_step(tiny_scenario):
    class Rogue:
        pass

    plan = Plan(name="rogue", n_states=1)
    plan.steps.append(Rogue())
    with pytest.raises(TypeError):
        PlanExecutor(tiny_scenario, SSSP()).run(plan)


def test_build_waves_rejects_mismatched_executions(tiny_scenario):
    plan = plan_for("boe", tiny_scenario.unified)
    result = PlanExecutor(tiny_scenario, SSSP()).run(plan)
    memory = MemorySystem(
        mega_config(capacity_scale=1.0), tiny_scenario.unified.graph
    )
    with pytest.raises(ValueError, match="work steps"):
        build_waves(
            plan, result.collector.executions[:-1], memory, concurrent=True
        )


def test_deletion_repair_rejects_live_presence():
    g = CSRGraph.from_edges(rmat_edges(16, 60, seed=1))
    none = np.full(g.n_edges, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    engine = MultiVersionEngine(SSSP(), u, track_parents=True)
    vals = engine.evaluate_full(
        np.ones(g.n_edges, dtype=bool), 0, parent_row=0
    )
    repair = DeletionRepair(engine)
    with pytest.raises(ValueError, match="presence_after"):
        repair.apply_deletions(
            vals, np.array([0]), np.ones(g.n_edges, dtype=bool), 0
        )


def test_collector_rejects_nested_and_orphan_usage():
    c = TraceCollector(4)
    c.begin("a", "add", (0,))
    with pytest.raises(RuntimeError):
        c.begin("b", "add", (0,))
    c.end()
    with pytest.raises(RuntimeError):
        c.end()
    from repro.engines.trace import RoundTrace

    with pytest.raises(RuntimeError):
        c.round(
            RoundTrace(
                "add", 0, 0, 0, np.empty(0, dtype=np.int64), 0, 0, 1,
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            )
        )


# -- corrupted scenario construction -----------------------------------------------


def test_corrupted_plan_breaks_membership_reconstruction():
    """A plan whose batches are swapped no longer reconstructs the true
    snapshot membership — the structural invariant the plan tests enforce."""
    pool = rmat_edges(32, 200, seed=3)
    scenario = synthesize_scenario(pool, n_snapshots=3, batch_pct=0.05, seed=2)
    u = scenario.unified
    plan = plan_for("boe", u)
    from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot

    adds = [s for s in plan.steps if isinstance(s, ApplyEdges)]
    adds[0].edge_idx, adds[-1].edge_idx = adds[-1].edge_idx, adds[0].edge_idx

    masks = {}
    mismatch = False
    for step in plan.steps:
        if isinstance(step, EvalFull):
            masks[step.state] = u.common_mask.copy()
        elif isinstance(step, CopyState):
            masks[step.dst] = masks[step.src].copy()
        elif isinstance(step, ApplyEdges):
            for t in step.targets:
                masks[t][step.edge_idx] = True
        elif isinstance(step, MarkSnapshot):
            if not np.array_equal(
                masks[step.state], u.presence_mask(step.snapshot)
            ):
                mismatch = True
    assert mismatch


# -- seeded fault campaign: every fault point fires, none escapes -------------


def test_fault_plan_counts_opportunities():
    from repro.resilience import FaultPlan, inject, maybe_fire

    plan = FaultPlan(["eventsim.drop-event"], seed=3, skip=2, max_fires=1)
    assert maybe_fire("eventsim.drop-event") is None  # nothing armed yet
    with inject(plan):
        fires = [maybe_fire("eventsim.drop-event") for __ in range(5)]
        assert maybe_fire("eventsim.duplicate-event") is None  # not armed
    assert [f is not None for f in fires] == [
        False, False, True, False, False  # skip=2, then the max_fires cap
    ]
    assert len(plan.fired) == 1
    assert plan.fired[0].detail["opportunity"] == 2
    assert maybe_fire("eventsim.drop-event") is None  # disarmed on exit


def test_inject_is_not_reentrant():
    from repro.resilience import FaultPlan, inject

    with inject(FaultPlan(["eventsim.drop-event"])):
        with pytest.raises(RuntimeError, match="already active"):
            with inject(FaultPlan(["eventsim.drop-event"])):
                pass  # pragma: no cover


def test_unknown_fault_point_rejected():
    from repro.resilience import FaultPlan
    from repro.resilience.campaign import run_trial

    with pytest.raises(KeyError, match="unknown fault point"):
        FaultPlan(["nonsense"])
    with pytest.raises(KeyError, match="unknown fault point"):
        run_trial(None, None, "nonsense")


@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_fault_point_fires_and_never_escapes(tiny_scenario, point):
    """Each registered fault point is injectable on the tiny workload, the
    fault is either detected (and then recovered) or provably masked, and
    nothing escapes."""
    from repro.resilience.campaign import run_trial

    outcome = run_trial(tiny_scenario, get_algorithm("sssp"), point, seed=1)
    assert outcome.injected, f"{point} never fired on the tiny workload"
    assert not outcome.escaped
    assert outcome.detected or outcome.masked
    if outcome.detected:
        assert outcome.recovered, f"{point} detected but not repaired"
    assert outcome.verdict in ("recovered", "detected-only", "masked")


def test_bitflip_corruption_detected_and_repaired(tiny_scenario):
    """The bit flip materially corrupts a snapshot; detect-and-recover
    repairs it by recomputing from the common graph."""
    from repro.resilience.campaign import run_trial

    outcome = run_trial(
        tiny_scenario, get_algorithm("sssp"), "executor.bitflip-value",
        seed=0, skip=0,
    )
    assert outcome.injected and outcome.detected and outcome.recovered
    assert outcome.detail.get("corrupted_snapshots")


def test_campaign_summary_counts(tiny_scenario):
    from repro.resilience.campaign import run_campaign

    campaign = run_campaign(tiny_scenario, get_algorithm("sssp"), seed=2)
    assert len(campaign.trials) >= 4
    assert campaign.injected == len(campaign.trials)
    assert campaign.escaped == 0
    assert campaign.detected + campaign.masked == campaign.injected
    line = campaign.summary_line()
    assert f"injected {campaign.injected}" in line
    assert "escaped 0" in line
    table = campaign.format_table()
    for trial in campaign.trials:
        assert trial.point in table


def test_campaign_is_deterministic(tiny_scenario):
    from repro.resilience.campaign import run_trial

    algo = get_algorithm("sssp")
    a = run_trial(tiny_scenario, algo, "executor.bitflip-value", seed=5)
    b = run_trial(tiny_scenario, algo, "executor.bitflip-value", seed=5)
    assert a.verdict == b.verdict
    assert {k: v for k, v in a.detail.items()} == b.detail


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_nan_weights_poison_visibly():
    """NaN edge weights surface as NaN values — poison stays visible
    instead of being silently replaced by a plausible number."""
    g = CSRGraph.from_tuples(3, [(0, 1, float("nan")), (1, 2, 1.0)])
    none = np.full(2, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    engine = MultiVersionEngine(SSSP(), u)
    vals = engine.evaluate_full(np.ones(2, dtype=bool), 0)
    assert np.isnan(vals[1])
