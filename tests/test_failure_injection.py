"""Failure injection: malformed inputs and corrupted state must be caught.

A reproduction's validation machinery is only trustworthy if it actually
fires; these tests corrupt values, traces, plans and inputs on purpose and
assert the library refuses or detects them rather than silently producing
wrong numbers.
"""

import numpy as np
import pytest

from repro.accel.simulate import build_waves
from repro.accel.memory import MemorySystem
from repro.accel.config import mega_config
from repro.algorithms import SSSP, get_algorithm
from repro.engines import (
    DeletionRepair,
    MultiVersionEngine,
    PlanExecutor,
    TraceCollector,
)
from repro.engines.validation import validate_workflow
from repro.evolving import synthesize_scenario
from repro.evolving.unified_csr import UnifiedCSR
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat_edges
from repro.schedule import boe_plan, plan_for
from repro.schedule.plan import Plan


# -- corrupted results are detected ------------------------------------------


def test_validation_catches_single_vertex_corruption(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    result.snapshot_values[0][5] *= 2.0 if np.isfinite(
        result.snapshot_values[0][5]
    ) else 1.0
    result.snapshot_values[0][5] += 1.0
    with pytest.raises(AssertionError, match="wrong on snapshot 0"):
        validate_workflow(tiny_scenario, algo, result)


def test_validation_catches_swapped_snapshots(tiny_scenario):
    algo = get_algorithm("sssp")
    result = PlanExecutor(tiny_scenario, algo).run(
        boe_plan(tiny_scenario.unified)
    )
    a = result.snapshot_values[0]
    b = result.snapshot_values[tiny_scenario.n_snapshots - 1]
    if np.allclose(a, b, equal_nan=True):
        pytest.skip("snapshots coincide for this seed")
    result.snapshot_values[0], result.snapshot_values[
        tiny_scenario.n_snapshots - 1
    ] = b, a
    with pytest.raises(AssertionError):
        validate_workflow(tiny_scenario, algo, result)


# -- malformed structural inputs ----------------------------------------------


def test_unified_rejects_wrong_tag_lengths():
    g = CSRGraph.from_tuples(3, [(0, 1), (1, 2)])
    with pytest.raises(ValueError):
        UnifiedCSR(g, np.array([-1]), np.array([-1, -1]), 2)


def test_executor_rejects_unknown_step(tiny_scenario):
    class Rogue:
        pass

    plan = Plan(name="rogue", n_states=1)
    plan.steps.append(Rogue())
    with pytest.raises(TypeError):
        PlanExecutor(tiny_scenario, SSSP()).run(plan)


def test_build_waves_rejects_mismatched_executions(tiny_scenario):
    plan = plan_for("boe", tiny_scenario.unified)
    result = PlanExecutor(tiny_scenario, SSSP()).run(plan)
    memory = MemorySystem(
        mega_config(capacity_scale=1.0), tiny_scenario.unified.graph
    )
    with pytest.raises(ValueError, match="work steps"):
        build_waves(
            plan, result.collector.executions[:-1], memory, concurrent=True
        )


def test_deletion_repair_rejects_live_presence():
    g = CSRGraph.from_edges(rmat_edges(16, 60, seed=1))
    none = np.full(g.n_edges, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    engine = MultiVersionEngine(SSSP(), u, track_parents=True)
    vals = engine.evaluate_full(
        np.ones(g.n_edges, dtype=bool), 0, parent_row=0
    )
    repair = DeletionRepair(engine)
    with pytest.raises(ValueError, match="presence_after"):
        repair.apply_deletions(
            vals, np.array([0]), np.ones(g.n_edges, dtype=bool), 0
        )


def test_collector_rejects_nested_and_orphan_usage():
    c = TraceCollector(4)
    c.begin("a", "add", (0,))
    with pytest.raises(RuntimeError):
        c.begin("b", "add", (0,))
    c.end()
    with pytest.raises(RuntimeError):
        c.end()
    from repro.engines.trace import RoundTrace

    with pytest.raises(RuntimeError):
        c.round(
            RoundTrace(
                "add", 0, 0, 0, np.empty(0, dtype=np.int64), 0, 0, 1,
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            )
        )


# -- corrupted scenario construction -----------------------------------------------


def test_corrupted_plan_breaks_membership_reconstruction():
    """A plan whose batches are swapped no longer reconstructs the true
    snapshot membership — the structural invariant the plan tests enforce."""
    pool = rmat_edges(32, 200, seed=3)
    scenario = synthesize_scenario(pool, n_snapshots=3, batch_pct=0.05, seed=2)
    u = scenario.unified
    plan = plan_for("boe", u)
    from repro.schedule.plan import ApplyEdges, CopyState, EvalFull, MarkSnapshot

    adds = [s for s in plan.steps if isinstance(s, ApplyEdges)]
    adds[0].edge_idx, adds[-1].edge_idx = adds[-1].edge_idx, adds[0].edge_idx

    masks = {}
    mismatch = False
    for step in plan.steps:
        if isinstance(step, EvalFull):
            masks[step.state] = u.common_mask.copy()
        elif isinstance(step, CopyState):
            masks[step.dst] = masks[step.src].copy()
        elif isinstance(step, ApplyEdges):
            for t in step.targets:
                masks[t][step.edge_idx] = True
        elif isinstance(step, MarkSnapshot):
            if not np.array_equal(
                masks[step.state], u.presence_mask(step.snapshot)
            ):
                mismatch = True
    assert mismatch


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_nan_weights_poison_visibly():
    """NaN edge weights surface as NaN values — poison stays visible
    instead of being silently replaced by a plausible number."""
    g = CSRGraph.from_tuples(3, [(0, 1, float("nan")), (1, 2, 1.0)])
    none = np.full(2, -1, dtype=np.int32)
    u = UnifiedCSR(g, none, none.copy(), 1)
    engine = MultiVersionEngine(SSSP(), u)
    vals = engine.evaluate_full(np.ones(2, dtype=bool), 0)
    assert np.isnan(vals[1])
