"""Tests for the modelled software/GPU baselines (Fig. 14)."""

import pytest

from repro.algorithms import get_algorithm
from repro.baselines import SOFTWARE_SYSTEMS, run_baseline


def test_all_four_paper_baselines_present():
    assert set(SOFTWARE_SYSTEMS) == {
        "kickstarter-ws",
        "risgraph-ws",
        "risgraph-boe",
        "subway-ws",
    }


def test_platform_ordering_constants():
    """Per-event costs reflect the paper's platform ranking."""
    ks = SOFTWARE_SYSTEMS["kickstarter-ws"].ns_per_event
    rg = SOFTWARE_SYSTEMS["risgraph-ws"].ns_per_event
    gpu = SOFTWARE_SYSTEMS["subway-ws"].ns_per_event
    assert ks > rg > gpu


def test_run_baseline_by_name_and_object(tiny_scenario):
    algo = get_algorithm("sssp")
    by_name = run_baseline(tiny_scenario, algo, "risgraph-ws")
    by_obj = run_baseline(
        tiny_scenario, algo, SOFTWARE_SYSTEMS["risgraph-ws"]
    )
    assert by_name.update_time_ms == by_obj.update_time_ms
    assert by_name.system == "risgraph-ws"


def test_times_scale_with_ns_per_event(tiny_scenario):
    algo = get_algorithm("sssp")
    ks = run_baseline(tiny_scenario, algo, "kickstarter-ws")
    rg = run_baseline(tiny_scenario, algo, "risgraph-ws")
    # same workflow, same events, different platform constant
    assert ks.events == rg.events
    ratio = (
        SOFTWARE_SYSTEMS["kickstarter-ws"].ns_per_event
        / SOFTWARE_SYSTEMS["risgraph-ws"].ns_per_event
    )
    assert ks.update_time_ms == pytest.approx(rg.update_time_ms * ratio)


def test_software_boe_does_less_wall_clock_work(tiny_scenario):
    """BOE's per-snapshot updates parallelize across cores: its costed
    (union) event count is below WS's scalar count."""
    algo = get_algorithm("sssp")
    ws = run_baseline(tiny_scenario, algo, "risgraph-ws")
    boe = run_baseline(tiny_scenario, algo, "risgraph-boe")
    assert boe.events < ws.events


def test_total_includes_initial_eval(tiny_scenario):
    algo = get_algorithm("bfs")
    r = run_baseline(tiny_scenario, algo, "subway-ws")
    assert r.total_time_ms > r.update_time_ms > 0
