"""Durable ingest: WAL framing, recovery, overload protection, drills.

The WAL unit layer needs no service at all; the recovery-into-service
tests spin up a real tiny-scale process-pool service; the crash drill is
exercised end to end (subprocess + SIGKILL) once, at tiny scale.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.cli import main
from repro.resilience import faults
from repro.resilience.campaign import WAL_POINTS, run_trial
from repro.service import (
    DeltaBatch,
    QueryRequest,
    QueryService,
    ServiceConfig,
    SimulatedCrash,
    recover_wal,
    run_crash_drill,
    split_expired,
    validate_request,
)
from repro.service.batcher import PendingQuery
from repro.service.server import ServiceFrontend
from repro.service.wal import (
    _HEADER,
    QUARANTINE_NAME,
    SNAPSHOT_NAME,
    WalPosition,
    WalWriteError,
    WriteAheadLog,
    advance_fence,
    current_fence_token,
    read_from,
    read_snapshot,
)

TINY = dict(scale="tiny", n_snapshots=4, workers=1)


def _record(epoch: int, graph: str = "PK") -> dict:
    return {
        "op": "ingest", "graph": graph, "epoch": epoch,
        "delta": {"adds": [[0, epoch, 1.0]], "dels": []},
    }


def _fill(wal: WriteAheadLog, n: int, graph: str = "PK") -> list[dict]:
    records = [_record(k, graph) for k in range(1, n + 1)]
    for r in records:
        wal.append(r)
    return records


# -- framing and recovery (no service) -------------------------------------


def test_wal_roundtrip_preserves_records_and_order(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    records = _fill(wal, 5)
    assert wal.stats()["records"] == 5
    assert wal.stats()["lag_records"] == 0  # always-fsync: nothing pending
    wal.close()
    recovery = recover_wal(tmp_path)
    assert recovery.clean and not recovery.truncated_tail
    assert recovery.records == records


def test_wal_segment_rotation_and_reopen(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="never", segment_bytes=64)
    _fill(wal, 6)  # every frame is ~> 64 bytes, so one record per segment
    wal.close()
    segments = sorted(tmp_path.glob("wal-*.seg"))
    assert len(segments) >= 6
    # reopening never appends into an old segment
    wal2 = WriteAheadLog(tmp_path)
    wal2.append(_record(7))
    wal2.close()
    assert sorted(tmp_path.glob("wal-*.seg"))[-1] not in segments
    recovery = recover_wal(tmp_path)
    assert [r["epoch"] for r in recovery.records] == [1, 2, 3, 4, 5, 6, 7]


def test_wal_batch_fsync_tracks_lag(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="batch", sync_every=4)
    _fill(wal, 6)
    assert wal.stats()["lag_records"] == 2  # synced at 4, two pending
    wal.sync()
    assert wal.stats()["lag_records"] == 0
    wal.close()


def test_wal_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync"):
        WriteAheadLog(tmp_path, fsync="sometimes")


def test_wal_torn_tail_truncated_once_then_clean(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 3)
    wal.close()
    segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
    segment.write_bytes(segment.read_bytes()[:-5])  # tear the last record
    recovery = recover_wal(tmp_path)
    assert recovery.truncated_tail and not recovery.clean
    assert [r["epoch"] for r in recovery.records] == [1, 2]
    assert any("torn tail" in w for w in recovery.warnings)
    # the repair is durable: a second recovery sees a clean log
    again = recover_wal(tmp_path)
    assert again.clean and [r["epoch"] for r in again.records] == [1, 2]


def test_wal_short_header_tail_truncated(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 2)
    wal.close()
    segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
    with open(segment, "ab") as fh:
        fh.write(b"\x00\x00")  # 2 of 8 header bytes
    recovery = recover_wal(tmp_path)
    assert recovery.truncated_tail
    assert len(recovery.records) == 2


def test_wal_crc_mismatch_quarantines_exactly_that_record(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 3)
    wal.close()
    segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
    data = bytearray(segment.read_bytes())
    # flip one payload byte of the *second* record
    first_len = _HEADER.unpack_from(data, 0)[0]
    second_at = _HEADER.size + first_len
    data[second_at + _HEADER.size] ^= 0xFF
    segment.write_bytes(bytes(data))
    recovery = recover_wal(tmp_path)
    assert recovery.quarantined == 1
    assert [r["epoch"] for r in recovery.records] == [1, 3]
    quarantine = (tmp_path / QUARANTINE_NAME).read_text().strip().splitlines()
    assert len(quarantine) == 1
    entry = json.loads(quarantine[0])
    assert entry["reason"] == "crc-mismatch" and entry["payload_hex"]


def test_wal_valid_crc_invalid_json_quarantined(tmp_path):
    payload = b"not json at all"
    frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    (tmp_path / "wal-00000001.seg").write_bytes(frame)
    recovery = recover_wal(tmp_path)
    assert recovery.quarantined == 1 and not recovery.records


def test_wal_compaction_snapshots_and_drops_segments(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 3)
    wal.compact({"epochs": {"PK": 3}, "logs": {"PK": []}})
    assert not list(tmp_path.glob("wal-*.seg"))
    assert (tmp_path / SNAPSHOT_NAME).exists()
    post = _fill(wal, 1)  # appends after compaction land in a new segment
    wal.close()
    recovery = recover_wal(tmp_path)
    assert recovery.snapshot == {"epochs": {"PK": 3}, "logs": {"PK": []}}
    assert recovery.records == post
    assert wal.stats()["compactions"] == 1


def test_wal_unreadable_snapshot_is_warned_not_fatal(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    records = _fill(wal, 2)
    wal.close()
    (tmp_path / SNAPSHOT_NAME).write_text("{truncated")
    recovery = recover_wal(tmp_path)
    assert recovery.snapshot is None
    assert any(SNAPSHOT_NAME in w for w in recovery.warnings)
    assert recovery.records == records


def test_recover_missing_dir_is_empty_and_clean(tmp_path):
    recovery = recover_wal(tmp_path / "never-created")
    assert recovery.clean and not recovery.records


def test_wal_injected_torn_write_never_acknowledges(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    plan = faults.FaultPlan(["service.wal-torn-write"], seed=3, skip=1)
    acked = []
    with faults.inject(plan):
        for k in range(1, 5):
            try:
                wal.append(_record(k))
                acked.append(k)
            except WalWriteError:
                pass
    wal.close()
    assert acked == [1, 3, 4]  # skip=1: the second append tore
    recovery = recover_wal(tmp_path)
    assert [r["epoch"] for r in recovery.records] == acked
    assert not recovery.clean  # the torn frame was noticed


# -- replication cursor: read_from, rotation, compaction, fencing ----------


def test_read_from_genesis_and_incremental_cursor(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    records = _fill(wal, 3)
    tail = read_from(tmp_path)
    assert tail.records == records and not tail.reset
    position = tail.position
    # the cursor round-trips through its wire form (follower checkpoint)
    assert WalPosition.from_dict(position.as_dict()) == position
    assert read_from(tmp_path, position).records == []
    wal.append(_record(4))
    wal.append(_record(5))
    incremental = read_from(tmp_path, position)
    assert incremental.records == [_record(4), _record(5)]
    assert read_from(tmp_path, incremental.position).records == []
    wal.close()


def test_read_from_follows_appends_across_rotation(tmp_path):
    # segment_bytes=1 rotates after every append: each record lands in
    # its own segment and the cursor must follow without a gap
    wal = WriteAheadLog(tmp_path, fsync="always", segment_bytes=1)
    records = _fill(wal, 3)
    tail = read_from(tmp_path)
    assert tail.records == records
    more = [_record(4), _record(5)]
    for r in more:
        wal.append(r)
    assert read_from(tmp_path, tail.position).records == more
    wal.close()


def test_read_from_cursor_into_compacted_away_segment_resets(tmp_path):
    # regression: a cursor pointing into a segment that compaction
    # deleted must surface as an explicit reset, never as silently-empty
    # progress (the follower would stall forever at a dead offset)
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 4)
    position = read_from(tmp_path).position
    wal.compact({"epochs": {"PK": 4}, "logs": {"PK": []}})
    wal.append(_record(5))
    tail = read_from(tmp_path, position)
    assert tail.reset and tail.records == [] and tail.warnings
    # re-sync: snapshot plus a genesis read, then the cursor is live again
    assert read_snapshot(tmp_path)["epochs"] == {"PK": 4}
    fresh = read_from(tmp_path)
    assert fresh.records == [_record(5)]
    assert fresh.position.compactions == 1
    assert not read_from(tmp_path, fresh.position).reset
    wal.close()


def test_read_from_parks_before_in_progress_frame_then_resumes(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    records = _fill(wal, 2)
    position = read_from(tmp_path).position
    # a half-written frame at the tip of the live segment is an append in
    # progress: the tailer parks before it — never truncates —
    payload = json.dumps(_record(3), sort_keys=True).encode("utf-8")
    frame = _HEADER.pack(
        len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload
    with open(wal.segment_path, "ab") as fh:
        fh.write(frame[:7])
    parked = read_from(tmp_path, position)
    assert parked.records == [] and parked.position == position
    # — and picks the record up once the writer finishes the frame
    with open(wal.segment_path, "ab") as fh:
        fh.write(frame[7:])
    assert read_from(tmp_path, position).records == [_record(3)]
    assert recover_wal(tmp_path).records == records + [_record(3)]
    wal.close()


def test_read_from_skips_torn_record_in_rotated_segment(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 2)
    # half a frame reaches disk, then the writer rotates away and dies:
    # that torn tail is permanent, not in-progress — skip with a warning
    payload = json.dumps(_record(3), sort_keys=True).encode("utf-8")
    frame = _HEADER.pack(
        len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload
    with open(wal.segment_path, "ab") as fh:
        fh.write(frame[: len(frame) // 2])
    wal.rotate()
    wal.append(_record(4))
    tail = read_from(tmp_path)
    assert tail.records == [_record(1), _record(2), _record(4)]
    assert any("torn record" in w for w in tail.warnings)
    wal.close()


def test_compaction_racing_tailer_with_old_segment_held_open(tmp_path):
    # the follower may hold a rotated segment open while the primary
    # compacts it away (POSIX keeps the inode alive); the follower's
    # *next* tail must detect the compaction and reset rather than keep
    # ordering against deleted files
    wal = WriteAheadLog(tmp_path, fsync="always")
    _fill(wal, 3)
    mid = read_from(tmp_path).position
    with open(wal.segment_path) as held:
        wal.compact({"epochs": {"PK": 3}, "logs": {"PK": []}})
        wal.append(_record(4))
        raced = read_from(tmp_path, mid)
        assert raced.reset and raced.records == []
        assert held.readable()  # stale handle still open, never consulted
    resynced = read_from(tmp_path)
    assert resynced.records == [_record(4)]
    wal.close()


def test_fence_advance_and_zombie_append_detection(tmp_path):
    old = WriteAheadLog(tmp_path, fsync="always")
    records = _fill(old, 2)
    tip = read_from(tmp_path).position
    token = advance_fence(tmp_path, tip)
    assert token == 1 and current_fence_token(tmp_path) == 1
    new = WriteAheadLog(tmp_path, fsync="always", fence_token=token)
    new.append(_record(3))
    # the fenced-off writer appends after the fence position: a zombie —
    # every reader must refuse the record, and recovery quarantines it
    old.append(_record(99))
    old.close()
    tail = read_from(tmp_path)
    assert tail.records == records + [_record(3)]
    assert tail.fenced == 1
    recovery = recover_wal(tmp_path)
    assert recovery.records == records + [_record(3)]
    assert recovery.fenced == 1 and recovery.quarantined == 1
    assert (tmp_path / QUARANTINE_NAME).exists()
    # records appended *before* the fence keep their validity: only the
    # post-fence zombie write is refused
    assert records[0] in recovery.records
    new.close()


# -- recovery into the service ---------------------------------------------


def test_service_recovers_epochs_and_results_from_wal(tmp_path):
    cfg = ServiceConfig(**TINY, wal_dir=str(tmp_path), wal_fsync="batch")
    with QueryService(cfg) as svc:
        for k in range(1, 4):
            svc.ingest("PK", seed=k)
        before = svc.submit(
            QueryRequest(graph="PK", algo="sssp", source=1)
        ).wait(timeout=120)
        assert before.ok and before.epoch == 3

    with QueryService(cfg) as revived:
        assert revived.epoch("PK") == 3
        assert revived.last_recovery is not None
        assert revived.last_recovery.clean
        after = revived.submit(
            QueryRequest(graph="PK", algo="sssp", source=1)
        ).wait(timeout=120)
    assert after.ok and after.epoch == 3
    assert [s.checksum for s in after.summaries] == [
        s.checksum for s in before.summaries
    ]


def test_service_compaction_preserves_recovery(tmp_path):
    cfg = ServiceConfig(**TINY, wal_dir=str(tmp_path), wal_compact_every=2)
    with QueryService(cfg) as svc:
        for k in range(1, 6):
            svc.ingest("PK", seed=k)
        assert svc.wal.compactions >= 2
    with QueryService(cfg) as revived:
        assert revived.epoch("PK") == 5


def test_service_freezes_graph_at_gap_behind_quarantined_record(tmp_path):
    wal = WriteAheadLog(tmp_path, fsync="always")
    plan = faults.FaultPlan(["service.wal-corrupt-record"], seed=0, skip=1)
    with faults.inject(plan):
        _fill(wal, 3)  # second record commits corrupted
    wal.close()
    cfg = ServiceConfig(**TINY, wal_dir=str(tmp_path))
    with QueryService(cfg) as svc:
        # epoch 2 was quarantined, so epoch 3 must not be applied
        assert svc.epoch("PK") == 1
        assert svc.last_recovery.quarantined == 1


def test_crash_on_ingest_commits_without_acknowledging(tmp_path):
    cfg = ServiceConfig(
        **TINY, wal_dir=str(tmp_path),
        inject_fault=("service.crash-on-ingest",),
    )
    svc = QueryService(cfg).start()
    try:
        with pytest.raises(SimulatedCrash):
            svc.ingest("PK", seed=1)
        assert svc.epoch("PK") == 0  # never applied in memory
    finally:
        svc.stop(drain=False)
    with QueryService(ServiceConfig(**TINY, wal_dir=str(tmp_path))) as after:
        # committed-but-unacknowledged may legally be replayed
        assert after.epoch("PK") == 1


@pytest.mark.parametrize("point", WAL_POINTS)
def test_fault_campaign_wal_trials_recover(point):
    outcome = run_trial(None, None, point, seed=7)
    assert outcome.injected and outcome.detected and outcome.recovered


# -- overload protection ----------------------------------------------------


def test_split_expired_separates_blown_deadlines():
    fresh = PendingQuery(QueryRequest("PK", "sssp", 1), epoch=0)
    blown = PendingQuery(
        QueryRequest("PK", "sssp", 2, deadline_s=1e-9), epoch=0
    )
    live, expired = split_expired([fresh, blown])
    assert live == [fresh] and expired == [blown]


def test_validate_request_rejects_nonpositive_deadline():
    with pytest.raises(ValueError, match="deadline"):
        validate_request(
            QueryRequest("PK", "sssp", 1, deadline_s=0.0), 4, "tiny"
        )


def test_expired_query_is_shed_with_retry_after():
    cfg = ServiceConfig(**TINY, coalesce_ms=50.0)
    with QueryService(cfg) as svc:
        svc.submit(QueryRequest("PK", "sssp", 1)).wait(timeout=120)  # warm
        response = svc.submit(
            QueryRequest("PK", "sssp", 2, deadline_s=0.001)
        ).wait(timeout=30)
        assert response.status == "shed"
        assert response.retryable
        assert response.retry_after and response.retry_after > 0
        assert svc.service_stats()["shed"] == 1
        assert "shed" in svc.health()


def test_stop_reports_drain_timeout():
    with QueryService(ServiceConfig(**TINY)) as svc:
        svc.submit(QueryRequest("PK", "sssp", 1)).wait(timeout=120)
        # a fake in-flight plan that never completes
        with svc._inflight_lock:
            svc._inflight.add(-1)
        assert svc.stop(drain=True, timeout=0.2) is False
        assert svc.service_stats()["drain_timeouts"] == 1
        with svc._inflight_lock:
            svc._inflight.discard(-1)


# -- health op ---------------------------------------------------------------


def test_health_op_reports_epochs_queue_and_wal(tmp_path):
    cfg = ServiceConfig(**TINY, wal_dir=str(tmp_path))
    with QueryService(cfg) as svc:
        svc.ingest("PK", seed=1)
        front = ServiceFrontend(svc)
        health = front.handle_line(json.dumps({"op": "health"}))
        assert health["ok"] and health["status"] == "ok"
        assert health["epochs"] == {"PK": 1}
        assert health["queue_depth"] == 0
        assert health["retry_after_s"] > 0
        assert health["wal"]["enabled"] and health["wal"]["records"] == 1
        assert "recovery" in health["wal"]
        # a deadline arrives on the wire in milliseconds
        shed = front.handle_line(json.dumps(
            {"op": "query", "graph": "PK", "algo": "sssp", "source": 1,
             "deadline_ms": 0.001}
        ))
        assert shed["status"] == "shed" and "retry_after_s" in shed


# -- the kill-and-recover drill ---------------------------------------------


def test_crash_drill_zero_loss_and_parity(tmp_path):
    report = run_crash_drill(
        str(tmp_path / "wal"), crash_at_epoch=2, graph="PK",
        scale="tiny", n_snapshots=4, workers=1, algos=["bfs", "sssp"],
    )
    assert report.ok, report.format_table()
    assert report.lost_deltas == 0
    assert report.recovered_epoch == report.acked_epoch == 2
    assert report.parity == {"bfs": True, "sssp": True}
    assert "PASS" in report.format_table()


# -- DeltaBatch wire format and edge cases (satellite) ----------------------


def test_from_lists_empty_adds_and_dels():
    batch = DeltaBatch.from_lists([], [])
    assert batch.n_additions == 0 and batch.n_deletions == 0


def test_from_lists_defaults_weight_to_one():
    batch = DeltaBatch.from_lists([[1, 2], [3, 4, 2.5]], [])
    assert batch.add_wt.tolist() == [1.0, 2.5]


@pytest.mark.parametrize(
    "adds, dels, match",
    [
        ([[1]], [], "addition row 0"),
        ([[1, 2, 3.0, 4]], [], "addition row 0"),
        ([[1, 2], [3]], [], "addition row 1"),
        ([], [[1]], "deletion row 0"),
        ([], [[1, 2, 3]], "deletion row 0"),
        (7, [], "delta rows"),
        ([], 7, "delta rows"),
    ],
)
def test_from_lists_ragged_rows_raise_clean_valueerror(adds, dels, match):
    with pytest.raises(ValueError, match=match):
        DeltaBatch.from_lists(adds, dels)


def test_delta_wire_roundtrip():
    batch = DeltaBatch.from_lists(
        [[0, 1, 2.0], [2, 3]], [[4, 5]], seed=9
    )
    clone = DeltaBatch.from_wire(batch.to_wire())
    assert clone.to_wire() == batch.to_wire()
    assert clone.meta == {"seed": 9}


# -- CLI surface (satellite: --no-out) --------------------------------------


def _bench_argv(*extra: str) -> list[str]:
    return [
        "serve-bench", "--scale", "tiny", "--snapshots", "4",
        "--workers", "1", "--duration", "0.2", "--rate", "20",
        "--sources", "4", *extra,
    ]


def test_cli_no_out_skips_report_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(_bench_argv("--no-out")) == 0
    assert not list(tmp_path.glob("*.json"))
    assert "deprecated" not in capsys.readouterr().err


def test_cli_empty_out_still_works_but_warns(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(_bench_argv("--out", "")) == 0
    assert not list(tmp_path.glob("*.json"))
    assert "deprecated" in capsys.readouterr().err


def test_cli_rejects_negative_crash_at_epoch(capsys):
    assert main(_bench_argv("--crash-at-epoch", "-1")) == 2
    assert capsys.readouterr().err.strip()


def test_cli_wal_flags_reach_service_config():
    from repro.cli import build_parser, _service_config

    args = build_parser().parse_args(_bench_argv(
        "--wal-dir", "w", "--wal-fsync", "batch", "--wal-compact-every", "5"
    ))
    cfg = _service_config(args)
    assert cfg.wal_dir == "w"
    assert cfg.wal_fsync == "batch"
    assert cfg.wal_compact_every == 5
